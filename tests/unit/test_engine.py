"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Event, EventEngine


def test_events_fire_in_time_order():
    engine = EventEngine()
    fired = []
    engine.schedule(30, lambda: fired.append("c"))
    engine.schedule(10, lambda: fired.append("a"))
    engine.schedule(20, lambda: fired.append("b"))
    engine.run()
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_scheduling_order():
    engine = EventEngine()
    fired = []
    for label in ("first", "second", "third"):
        engine.schedule(5, lambda label=label: fired.append(label))
    engine.run()
    assert fired == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    engine = EventEngine()
    seen = []
    engine.schedule(42, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [42]
    assert engine.now == 42


def test_schedule_at_absolute_time():
    engine = EventEngine()
    seen = []
    engine.schedule_at(100, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [100]


def test_schedule_in_past_rejected():
    engine = EventEngine()
    engine.schedule(10, lambda: None)
    engine.step()
    with pytest.raises(ValueError):
        engine.schedule_at(5, lambda: None)
    with pytest.raises(ValueError):
        engine.schedule(-1, lambda: None)


def test_nested_scheduling_from_callback():
    engine = EventEngine()
    fired = []

    def outer():
        fired.append(("outer", engine.now))
        engine.schedule(5, lambda: fired.append(("inner", engine.now)))

    engine.schedule(10, outer)
    engine.run()
    assert fired == [("outer", 10), ("inner", 15)]


def test_cancelled_events_do_not_fire():
    engine = EventEngine()
    fired = []
    event = engine.schedule(10, lambda: fired.append("cancelled"))
    engine.schedule(20, lambda: fired.append("kept"))
    event.cancel()
    engine.run()
    assert fired == ["kept"]


def test_run_until_stops_before_later_events():
    engine = EventEngine()
    fired = []
    engine.schedule(10, lambda: fired.append(10))
    engine.schedule(50, lambda: fired.append(50))
    engine.run(until=20)
    assert fired == [10]
    assert engine.pending == 1
    engine.run()
    assert fired == [10, 50]


def test_max_events_limit():
    engine = EventEngine()
    count = []
    for _ in range(10):
        engine.schedule(1, lambda: count.append(1))
    processed = engine.run(max_events=3)
    assert processed == 3
    assert len(count) == 3


def test_peek_time_skips_cancelled():
    engine = EventEngine()
    first = engine.schedule(5, lambda: None)
    engine.schedule(9, lambda: None)
    first.cancel()
    assert engine.peek_time() == 9


def test_events_processed_counter():
    engine = EventEngine()
    for delay in (1, 2, 3):
        engine.schedule(delay, lambda: None)
    engine.run()
    assert engine.events_processed == 3


def test_step_returns_false_when_empty():
    engine = EventEngine()
    assert engine.step() is False


def test_event_uses_slots():
    engine = EventEngine()
    event = engine.schedule(1, lambda: None)
    assert not hasattr(event, "__dict__")
    with pytest.raises(AttributeError):
        event.arbitrary_attribute = 1


def test_pending_counts_live_events():
    engine = EventEngine()
    events = [engine.schedule(i + 1, lambda: None) for i in range(10)]
    assert engine.pending == 10
    events[3].cancel()
    events[7].cancel()
    assert engine.pending == 8
    # Double-cancel must not double-count.
    events[3].cancel()
    assert engine.pending == 8
    engine.step()  # fires event 0
    assert engine.pending == 7
    engine.run()
    assert engine.pending == 0


def test_pending_consistent_under_random_cancellation():
    """The live counter must match a brute-force scan at every step,
    including across lazy pops and heap compactions."""
    rng = random.Random(7)
    engine = EventEngine()
    handles = []

    def scan():
        return sum(
            1 for entry in engine._heap if not entry[2].cancelled
        )

    for round_number in range(300):
        handles.append(engine.schedule(rng.randrange(50), lambda: None))
        if handles and rng.random() < 0.6:
            rng.choice(handles).cancel()
        if rng.random() < 0.3:
            engine.step()
        assert engine.pending == scan(), "round %d" % round_number
    engine.run()
    assert engine.pending == scan() == 0


def test_compaction_preserves_order_and_counts():
    engine = EventEngine()
    fired = []
    keep = []
    cancel = []
    for i in range(400):
        handle = engine.schedule(
            1000 - i, lambda i=i: fired.append(1000 - i)
        )
        (cancel if i % 3 else keep).append(handle)
    for handle in cancel:
        handle.cancel()
    # Enough cancellations to have forced at least one compaction.
    assert engine.pending == len(keep)
    assert len(engine._heap) < 400
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(keep)
    assert engine.pending == 0


def test_compaction_during_run_callback():
    """A callback that mass-cancels (triggering in-place compaction)
    must not derail the drain loop's view of the heap."""
    engine = EventEngine()
    fired = []
    victims = [
        engine.schedule(10 + i, lambda: fired.append("victim"))
        for i in range(200)
    ]

    def slaughter():
        for victim in victims:
            victim.cancel()

    engine.schedule(5, slaughter)
    survivor = engine.schedule(500, lambda: fired.append("survivor"))
    engine.run()
    assert fired == ["survivor"]
    assert engine.pending == 0
    assert survivor.cancelled is False


def test_cancelled_event_repr():
    event = Event(5, 0, lambda: None)
    event.cancel()
    assert "cancelled=True" in repr(event)


def test_deterministic_interleaving_with_nested_events():
    def run_once():
        engine = EventEngine()
        order = []

        def chain(n):
            order.append(n)
            if n < 5:
                engine.schedule(n + 1, lambda: chain(n + 1))

        engine.schedule(0, lambda: chain(0))
        engine.schedule(3, lambda: order.append(100))
        engine.run()
        return order

    assert run_once() == run_once()


def test_call_every_fires_at_fixed_cadence():
    engine = EventEngine()
    ticks = []
    engine.schedule(10, lambda: None)
    engine.schedule(100, lambda: None)
    engine.call_every(30, lambda: ticks.append(engine.now))
    engine.run()
    # The sampler keeps pace with real work (the events at 10 and
    # 100) but stops rescheduling once it is the only thing left, so
    # it never keeps a drained simulation alive.
    assert ticks == [30, 60, 90, 120]
    assert engine.pending == 0


def test_call_every_stops_when_engine_is_otherwise_idle():
    engine = EventEngine()
    ticks = []
    engine.call_every(25, lambda: ticks.append(engine.now))
    engine.run()
    assert ticks == [25]


def test_call_every_rejects_nonpositive_interval():
    engine = EventEngine()
    with pytest.raises(ValueError):
        engine.call_every(0, lambda: None)
    with pytest.raises(ValueError):
        engine.call_every(-5, lambda: None)

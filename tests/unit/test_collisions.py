"""Deterministic unit tests for the collision and MSHR-wait paths.

The stress-workload integration tests show that squashes, retries and
MSHR waits *happen*; these tests pin down the mechanism with
hand-crafted two-access traces where the colliding pair is chosen
exactly (Section 2.1.4 of the paper):

* a write issued while another CMP's write to the same line is in
  flight is squashed and retried after the backoff;
* a read issued while another CMP's write is in flight (or vice
  versa) collides the same way, while two concurrent reads do not;
* a second access to a line from the *same* CMP never goes on the
  ring: it parks in the transaction's MSHR waiter list and reissues
  when the first transaction retires.

Every run keeps ``track_versions``/``check_invariants`` on, so the
simulator itself verifies that the collision resolution preserved
write serialization (``version_violations == 0`` is asserted by the
system invariant checker as the run progresses).
"""

from __future__ import annotations

from repro.config import CacheConfig, default_machine
from repro.core.algorithms import build_algorithm
from repro.sim.system import RingMultiprocessor
from repro.workloads.trace import Access, WorkloadTrace

LINE = 0x40


def run_traces(traces, cores_per_cmp=1, algorithm="lazy"):
    workload = WorkloadTrace(
        name="crafted", cores_per_cmp=cores_per_cmp, traces=traces
    )
    # The backoff is raised beyond any single transaction's latency so
    # a retry never re-collides with the transaction that squashed it:
    # each crafted collision then squashes exactly once, which keeps
    # the counter assertions exact.
    machine = default_machine(
        algorithm=algorithm,
        num_cmps=workload.num_cmps,
        cores_per_cmp=cores_per_cmp,
        cache=CacheConfig(num_lines=64, associativity=4),
        track_versions=True,
        check_invariants=True,
        squash_backoff=2000,
    )
    system = RingMultiprocessor(
        machine, build_algorithm(algorithm), workload
    )
    return system.run()


def test_write_write_collision_squashes_younger():
    # Core 1's write issues at t=10, while core 0's write (issued at
    # t=0, ring walk takes hundreds of cycles) is still in flight.
    result = run_traces([
        [Access(LINE, True, 0)],
        [Access(LINE, True, 10)],
    ])
    assert result.stats.writes == 2
    assert result.stats.squashes == 1
    assert result.stats.retries == 1
    assert result.stats.mshr_queued == 0
    assert result.stats.version_violations == 0


def test_read_collides_with_inflight_write():
    result = run_traces([
        [Access(LINE, True, 0)],
        [Access(LINE, False, 10)],
    ])
    assert result.stats.reads == 1
    assert result.stats.writes == 1
    assert result.stats.squashes == 1
    assert result.stats.retries == 1
    assert result.stats.version_violations == 0


def test_write_collides_with_inflight_read():
    result = run_traces([
        [Access(LINE, False, 0)],
        [Access(LINE, True, 10)],
    ])
    assert result.stats.squashes == 1
    assert result.stats.retries == 1
    assert result.stats.version_violations == 0


def test_concurrent_reads_do_not_collide():
    """Two overlapping reads of the same cold line from different
    CMPs both proceed; the read/read race is reconciled at
    data-delivery time, not by squashing."""
    result = run_traces([
        [Access(LINE, False, 0)],
        [Access(LINE, False, 10)],
    ])
    assert result.stats.reads == 2
    assert result.stats.read_ring_transactions == 2
    assert result.stats.squashes == 0
    assert result.stats.retries == 0


def test_squashed_message_still_walks_the_ring():
    """A squashed request keeps circulating for serialization: its
    crossings are charged even though its snoops are not counted as a
    fresh transaction."""
    collided = run_traces([
        [Access(LINE, True, 0)],
        [Access(LINE, True, 10)],
    ])
    serial = run_traces([
        [Access(LINE, True, 0)],
        [Access(LINE, True, 2000)],  # issues long after the first
    ])
    assert serial.stats.squashes == 0
    assert (
        collided.stats.write_ring_crossings
        > serial.stats.write_ring_crossings
    )


def test_same_cmp_read_waits_in_mshr():
    """The second core of a CMP reading a line its sibling is already
    fetching piggybacks on the in-flight transaction instead of
    issuing its own."""
    result = run_traces(
        [
            [Access(LINE, False, 0)],
            [Access(LINE, False, 10)],
            [],
            [],
        ],
        cores_per_cmp=2,
    )
    assert result.stats.reads == 2
    assert result.stats.mshr_queued == 1
    assert result.stats.read_ring_transactions == 1
    assert result.stats.squashes == 0
    # After the fetch retires, the waiter's reissue finds the line
    # inside the CMP (sibling cache or its own) - no second walk.
    assert (
        result.stats.read_hits_local_master
        + result.stats.read_hits_local_cache
        >= 1
    )


def test_same_cmp_write_waits_in_mshr():
    result = run_traces(
        [
            [Access(LINE, False, 0)],
            [Access(LINE, True, 10)],
            [],
            [],
        ],
        cores_per_cmp=2,
    )
    assert result.stats.reads == 1
    assert result.stats.writes == 1
    assert result.stats.mshr_queued == 1
    assert result.stats.squashes == 0
    assert result.stats.version_violations == 0


def test_mshr_wait_applies_across_algorithms():
    """Waiter piggybacking is algorithm-independent machinery."""
    for algorithm in ("eager", "subset", "exact"):
        result = run_traces(
            [
                [Access(LINE, False, 0)],
                [Access(LINE, False, 10)],
                [],
                [],
            ],
            cores_per_cmp=2,
            algorithm=algorithm,
        )
        assert result.stats.mshr_queued == 1, algorithm
        assert result.stats.read_ring_transactions == 1, algorithm


def test_retry_completes_after_backoff():
    """The squashed writer eventually commits: both writes serialize
    and the final version reflects two completed writes."""
    result = run_traces([
        [Access(LINE, True, 0)],
        [Access(LINE, True, 10)],
    ])
    assert result.stats.writes == 2
    # exec_time covers the retried write: issue + backoff + rewalk is
    # well beyond a single uncontended write transaction.
    solo = run_traces([[Access(LINE, True, 0)], []])
    assert result.exec_time > solo.exec_time

"""CLI fallback when a requested core rejects the configuration.

Array cores (``soa``/``jit``) raise ``SoaUnsupportedError`` at
construction for configurations outside their envelope.  The CLI must
not die with a traceback: it falls back to ``core=object`` with a
one-line stderr notice, unless ``--strict-core`` asks for the hard
error (clean message, exit 2).  The envelope flags are not yet
CLI-exposed, so these tests inject the refusal at the
``run_experiment`` seam - the CLI behavior under test is identical.
"""

from __future__ import annotations

import pytest

import repro.harness.cli as cli
from repro.sim.soa import SoaUnsupportedError


@pytest.fixture
def refusing_run_experiment(monkeypatch):
    """``run_experiment`` that refuses array cores the way an
    out-of-envelope construction does, recording each call's core."""
    calls = []
    real = cli.run_experiment

    def fake(algorithm, workload, core="object", **kwargs):
        calls.append(core)
        if core != "object":
            raise SoaUnsupportedError(
                "core=%s does not support: link_occupancy; "
                "use core=object" % core
            )
        return real(
            algorithm, workload, core=core, accesses_per_core=30, seed=1
        )

    monkeypatch.setattr(cli, "run_experiment", fake)
    return calls


def test_run_falls_back_to_object_with_warning(
    refusing_run_experiment, capsys
):
    exit_code = cli.main(["run", "--core", "jit", "--scale", "30"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert refusing_run_experiment == ["jit", "object"]
    assert "falling back to core=object" in captured.err
    assert captured.err.count("\n") == 1
    assert "exec time" in captured.out


def test_strict_core_keeps_the_hard_error(refusing_run_experiment, capsys):
    exit_code = cli.main(
        ["run", "--core", "jit", "--strict-core", "--scale", "30"]
    )
    captured = capsys.readouterr()
    assert exit_code == 2
    assert refusing_run_experiment == ["jit"]
    assert "does not support" in captured.err
    assert "falling back" not in captured.err


def test_object_core_error_is_never_swallowed_by_fallback(
    monkeypatch, capsys
):
    """A refusal with core=object already selected cannot fall back;
    it surfaces as the clean exit-2 error."""

    def always_refuse(*args, **kwargs):
        raise SoaUnsupportedError("core=soa does not support: tracing")

    monkeypatch.setattr(cli, "run_experiment", always_refuse)
    exit_code = cli.main(["run", "--scale", "30"])
    captured = capsys.readouterr()
    assert exit_code == 2
    assert "does not support" in captured.err

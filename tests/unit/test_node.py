"""Unit tests for the CMP node: snoop queries, predictor wiring, and
the registry callback chain."""

from __future__ import annotations

import pytest

from repro.config import CacheConfig, PredictorConfig
from repro.coherence.states import LineState
from repro.core.predictors import SubsetPredictor
from repro.ring.node import CMPNode, LineRegistry


def make_node(cores=4, predictor_kind="subset", registry=None):
    return CMPNode(
        cmp_id=2,
        cores=cores,
        cache_config=CacheConfig(num_lines=64, associativity=4),
        predictor_config=PredictorConfig(kind=predictor_kind, entries=64),
        registry=registry,
    )


class RecordingRegistry(LineRegistry):
    def __init__(self):
        self.events = []

    def supplier_gain(self, cmp_id, core, address):
        self.events.append(("gain", cmp_id, core, address))

    def supplier_loss(self, cmp_id, core, address):
        self.events.append(("loss", cmp_id, core, address))

    def line_added(self, cmp_id, core, address):
        self.events.append(("add", cmp_id, core, address))

    def line_removed(self, cmp_id, core, address):
        self.events.append(("remove", cmp_id, core, address))


def test_supplier_core_lookup():
    node = make_node()
    assert node.supplier_core(0x10) is None
    node.caches[2].fill(0x10, LineState.E)
    assert node.supplier_core(0x10) == 2
    assert node.has_supplier(0x10)


def test_sl_is_local_master_but_not_supplier():
    node = make_node()
    node.caches[1].fill(0x10, LineState.SL)
    assert node.supplier_core(0x10) is None
    assert node.local_master_core(0x10) == 1


def test_plain_shared_is_neither():
    node = make_node()
    node.caches[0].fill(0x10, LineState.S)
    assert node.supplier_core(0x10) is None
    assert node.local_master_core(0x10) is None
    assert node.holders(0x10) == [0]


def test_supplier_line_returns_core_and_line():
    node = make_node()
    node.caches[3].fill(0x20, LineState.T, version=9)
    core, line = node.supplier_line(0x20)
    assert core == 3
    assert line.version == 9
    assert node.supplier_line(0x21) is None


def test_invalidate_all_counts_copies():
    node = make_node()
    node.caches[0].fill(0x30, LineState.S)
    node.caches[1].fill(0x30, LineState.SL)
    assert node.invalidate_all(0x30) == 2
    assert node.holders(0x30) == []
    assert node.invalidate_all(0x30) == 0


def test_predictor_trained_by_cache_callbacks():
    node = make_node()
    predictor = node.predictor
    assert isinstance(predictor, SubsetPredictor)
    node.caches[0].fill(0x40, LineState.SG)
    assert 0x40 in predictor
    node.caches[0].fill(0x41, LineState.S)  # non-supplier: not tracked
    assert 0x41 not in predictor
    node.caches[0].invalidate(0x40)
    assert 0x40 not in predictor


def test_predictor_tracks_state_transitions():
    node = make_node()
    node.caches[1].fill(0x50, LineState.E)
    assert 0x50 in node.predictor
    node.caches[1].set_state(0x50, LineState.SL)  # downgrade
    assert 0x50 not in node.predictor
    node.caches[1].set_state(0x50, LineState.SG)  # regain
    assert 0x50 in node.predictor


def test_registry_receives_chained_events():
    registry = RecordingRegistry()
    node = make_node(registry=registry)
    node.caches[1].fill(0x60, LineState.D)
    assert ("add", 2, 1, 0x60) in registry.events
    assert ("gain", 2, 1, 0x60) in registry.events
    node.caches[1].invalidate(0x60)
    assert ("loss", 2, 1, 0x60) in registry.events
    assert ("remove", 2, 1, 0x60) in registry.events


def test_registry_gain_ordered_before_predictor_insert():
    """The registry must observe the gain before the predictor insert
    runs (an Exact downgrade triggered by the insert must see a
    consistent index)."""
    observed = {}

    class OrderRegistry(RecordingRegistry):
        def __init__(self):
            super().__init__()
            self.node = None

        def supplier_gain(self, cmp_id, core, address):
            # At gain time the predictor must not have been trained
            # yet (registry first, predictor second).
            observed["in_predictor_at_gain"] = (
                address in self.node.predictor
            )
            super().supplier_gain(cmp_id, core, address)

    registry = OrderRegistry()
    node = make_node(registry=registry)
    registry.node = node
    node.caches[0].fill(0x70, LineState.E)
    assert observed["in_predictor_at_gain"] is False
    assert 0x70 in node.predictor  # trained right after


def test_perfect_predictor_truth_defaults_to_scan():
    node = make_node(predictor_kind="perfect")
    assert not node.predictor.lookup(0x80)
    node.caches[0].fill(0x80, LineState.E)
    assert node.predictor.lookup(0x80)


def test_is_exact_flag():
    assert make_node(predictor_kind="exact").is_exact
    assert not make_node(predictor_kind="subset").is_exact

"""Hand-built traces violating each of the PR's new auditor rules.

Three rule families landed with the decision seam:

* ``policy`` - table-driven generalization of the predictor
  guarantees: snoop decisions must belong to the audited policy's
  :class:`~repro.core.decision.DecisionTable` alphabet, and write
  snoops must use the declared coupled/decoupled form;
* ``mshr`` - cross-transaction MSHR-waiter fairness (waiters release
  at retirement in exactly their wait order);
* ``serialization`` - same-address transactions serialize: a
  conflicting issue must be squashed, and a squash must have a
  conflict justifying it.

Each test builds the smallest trace that breaks exactly one rule, plus
the matching clean variant, so a future auditor change that silently
stops flagging (or starts over-flagging) fails here.
"""

from __future__ import annotations

from repro.core.algorithms import build_algorithm
from repro.obs.audit import TraceAuditor
from repro.obs.trace import EventType, TraceEvent

ADDRESS = 0x2A40


def _ev(time, type_, txn=1, node=0, address=ADDRESS, **data):
    return TraceEvent(time, type_, txn, node, address, data)


def _clean_txn(txn=1, node=0, t0=100, num_cmps=2, address=ADDRESS,
               kind="read", mode="split"):
    # mode="combined" keeps a trace with snoop_then_forward snoops
    # clean of the recombination rule (STF must forward combined).
    events = [
        _ev(t0, EventType.ISSUE, txn, node, address,
            kind=kind, core=0, squashed=False)
    ]
    time, current = t0, node
    for _ in range(num_cmps):
        to = (current + 1) % num_cmps
        events.append(
            _ev(time, EventType.HOP, txn, current, address,
                to=to, arrival=time + 39, mode=mode,
                satisfied=False, squashed=False)
        )
        time += 39
        current = to
    events.append(
        _ev(time + 400, EventType.FILL, txn, node, address,
            source="memory", version=0)
    )
    events.append(
        _ev(time + 400, EventType.RETIRE, txn, node, address,
            kind=kind, squashed=False)
    )
    return events


def _rules(violations):
    return [violation.rule for violation in violations]


def _policy_auditor(algorithm_name, decouple_writes=None):
    algorithm = build_algorithm(algorithm_name)
    return TraceAuditor(
        num_cmps=2,
        table=algorithm.decision_table(),
        decouple_writes=decouple_writes,
    )


# ----------------------------------------------------------------------
# policy: alphabet and per-prediction decisions


def test_policy_flags_primitive_outside_alphabet():
    # Lazy's alphabet is {snoop_then_forward}; a forward_then_snoop
    # read snoop cannot be one of its decisions.
    events = _clean_txn()
    events.insert(
        2,
        _ev(110, EventType.SNOOP, node=1, kind="read",
            primitive="forward_then_snoop", snoop_done=170,
            supplied=False),
    )
    assert "policy" in _rules(_policy_auditor("lazy").audit(events))


def test_policy_accepts_alphabet_primitive():
    events = _clean_txn(mode="combined")
    events.insert(
        2,
        _ev(110, EventType.SNOOP, node=1, kind="read",
            primitive="snoop_then_forward", snoop_done=170,
            supplied=False),
    )
    assert _policy_auditor("lazy").audit(events) == []


def test_policy_flags_snoop_on_filtering_prediction():
    # Superset Con filters (forwards) on every negative prediction: a
    # recorded snoop right after a negative lookup is a policy break.
    events = _clean_txn(mode="combined")
    events.insert(
        2,
        _ev(109, EventType.PREDICTOR, node=1, kind="superset",
            prediction=False, truth=False),
    )
    events.insert(
        3,
        _ev(110, EventType.SNOOP, node=1, kind="read",
            primitive="snoop_then_forward", snoop_done=170,
            supplied=False),
    )
    violations = _policy_auditor("superset_con").audit(events)
    assert _rules(violations) == ["policy"]
    assert "every reachable policy row forwards" in str(violations[0])


def test_policy_flags_forward_on_mandatory_snoop():
    # Lazy snoops on every hop; a predictor lookup followed directly
    # by the hop (no snoop) means the node forwarded unsnooped.
    events = _clean_txn()
    events.insert(
        2,
        _ev(138, EventType.PREDICTOR, node=1, kind="superset",
            prediction=False, truth=False),
    )
    assert "policy" in _rules(_policy_auditor("lazy").audit(events))


def test_policy_accepts_forward_on_negative_prediction():
    # Superset Con may forward on a negative prediction - the same
    # trace shape that breaks Lazy is clean here.
    events = _clean_txn()
    events.insert(
        2,
        _ev(138, EventType.PREDICTOR, node=1, kind="superset",
            prediction=False, truth=False),
    )
    assert _policy_auditor("superset_con").audit(events) == []


def test_policy_criticality_allows_both_rows():
    # Criticality may answer a positive prediction with either STF
    # (calm) or FTS (critical); both appear in one trace legally.
    events = _clean_txn(num_cmps=3, mode="combined")
    events.insert(
        2,
        _ev(105, EventType.SNOOP, node=1, kind="read",
            primitive="snoop_then_forward", snoop_done=160,
            supplied=False),
    )
    events.insert(
        4,
        _ev(150, EventType.SNOOP, node=2, kind="read",
            primitive="forward_then_snoop", snoop_done=210,
            supplied=False),
    )
    auditor = TraceAuditor(
        num_cmps=3,
        table=build_algorithm("criticality").decision_table(),
    )
    assert auditor.audit(events) == []


def test_policy_flags_wrong_write_snoop_form():
    events = _clean_txn(kind="write", mode="combined")
    events.insert(
        2,
        _ev(110, EventType.SNOOP, node=1, kind="write",
            primitive="snoop_then_forward", snoop_done=170,
            supplied=False),
    )
    # The policy declares decoupled writes (forward_then_snoop).
    auditor = _policy_auditor("eager", decouple_writes=True)
    assert "policy" in _rules(auditor.audit(events))
    # The coupled declaration accepts the same trace.
    assert _policy_auditor("lazy", decouple_writes=False).audit(events) == []


def test_policy_checks_skipped_without_table():
    # A dynamic policy (no table) gets no policy-guarantee auditing;
    # the same off-alphabet snoop passes.
    events = _clean_txn()
    events.insert(
        2,
        _ev(110, EventType.SNOOP, node=1, kind="read",
            primitive="forward_then_snoop", snoop_done=170,
            supplied=False),
    )
    assert TraceAuditor(num_cmps=2).audit(events) == []


# ----------------------------------------------------------------------
# mshr: waiter fairness


def _txn_with_waiters(wait_cores, reissue_cores):
    events = _clean_txn()
    retire = events[-1]
    for position, core in enumerate(wait_cores):
        events.insert(
            1 + position,
            _ev(120 + position, EventType.MSHR, node=0,
                phase="wait", core=core, position=position),
        )
    for position, core in enumerate(reissue_cores):
        events.append(
            _ev(retire.time, EventType.MSHR, node=0,
                phase="reissue", core=core, position=position),
        )
    return events


def test_mshr_clean_wait_order_passes():
    events = _txn_with_waiters([1, 2, 3], [1, 2, 3])
    assert TraceAuditor(num_cmps=2).audit(events) == []


def test_mshr_flags_out_of_order_release():
    events = _txn_with_waiters([1, 2, 3], [3, 2, 1])
    assert "mshr" in _rules(TraceAuditor(num_cmps=2).audit(events))


def test_mshr_flags_dropped_waiter():
    events = _txn_with_waiters([1, 2], [1])
    assert "mshr" in _rules(TraceAuditor(num_cmps=2).audit(events))


def test_mshr_flags_non_contiguous_positions():
    events = _txn_with_waiters([1, 2], [1, 2])
    # Corrupt one queue position (0,1 -> 0,5).
    for index, event in enumerate(events):
        if (
            event.type is EventType.MSHR
            and event.data.get("phase") == "wait"
            and event.data.get("position") == 1
        ):
            data = dict(event.data)
            data["position"] = 5
            events[index] = event._replace(data=data)
    assert "mshr" in _rules(TraceAuditor(num_cmps=2).audit(events))


def test_mshr_flags_unknown_phase():
    events = _clean_txn()
    events.insert(
        1,
        _ev(120, EventType.MSHR, node=0,
            phase="linger", core=1, position=0),
    )
    assert "mshr" in _rules(TraceAuditor(num_cmps=2).audit(events))


def test_mshr_reissue_after_retirement_is_legal():
    # Releases are emitted by retirement itself; the lifecycle rule
    # must not treat them as zombie events.
    events = _txn_with_waiters([2], [2])
    assert events[-1].type is EventType.MSHR
    assert TraceAuditor(num_cmps=2).audit(events) == []


# ----------------------------------------------------------------------
# serialization: same-address issue/squash ordering


def test_serialization_flags_unjustified_squash():
    events = _clean_txn(txn=1, node=0)
    squashed = [
        _ev(500, EventType.ISSUE, txn=2, node=1,
            kind="read", core=2, squashed=True),
        _ev(500, EventType.HOP, txn=2, node=1, to=0, arrival=539,
            mode="combined", satisfied=False, squashed=True),
        _ev(539, EventType.HOP, txn=2, node=0, to=1, arrival=578,
            mode="combined", satisfied=False, squashed=True),
        _ev(578, EventType.SQUASH, txn=2, node=1),
        _ev(578, EventType.RETIRE, txn=2, node=1,
            kind="read", squashed=True),
        _ev(778, EventType.RETRY, txn=2, node=1),
    ]
    # txn 1 retired long before txn 2 issues: nothing justifies the
    # squash.
    violations = TraceAuditor(num_cmps=2).audit(events + squashed)
    assert "serialization" in _rules(violations)


def test_serialization_flags_concurrent_write_not_squashed():
    write_a = _clean_txn(txn=1, node=0, t0=100, kind="write")
    write_b = _clean_txn(txn=2, node=1, t0=120, kind="write")
    # Interleave: b issues while a is still in flight, yet claims
    # non-squashed.
    events = write_a[:-1] + write_b + write_a[-1:]
    violations = TraceAuditor(num_cmps=2).audit(events)
    assert "serialization" in _rules(violations)
    assert any(v.txn == 2 for v in violations)


def test_serialization_allows_concurrent_reads():
    read_a = _clean_txn(txn=1, node=0, t0=100)
    read_b = _clean_txn(txn=2, node=1, t0=120)
    events = read_a[:-1] + read_b + read_a[-1:]
    assert TraceAuditor(num_cmps=2).audit(events) == []


def test_serialization_is_per_line():
    # Overlapping writes on different lines never conflict.
    write_a = _clean_txn(txn=1, node=0, t0=100, kind="write")
    write_b = _clean_txn(txn=2, node=1, t0=120, kind="write",
                         address=ADDRESS + 0x40)
    events = write_a[:-1] + write_b + write_a[-1:]
    assert TraceAuditor(num_cmps=2).audit(events) == []

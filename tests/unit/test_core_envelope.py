"""The unsupported-configuration envelope, flag by flag.

Both array cores (``soa`` and ``jit``) declare an explicit envelope:
every excluded feature must raise a clean, named
``SoaUnsupportedError`` at construction - never a mid-run crash or a
silently wrong result - while the object core runs the identical
configuration to completion.  One parametrized matrix pins each flag
to that contract, so adding an envelope hole or a new flag without
updating ``check_soa_supported``/``check_jit_supported`` fails loudly.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import default_machine
from repro.core.algorithms import build_algorithm
from repro.obs.trace import InMemorySink
from repro.registry import REGISTRY
from repro.sim.jit import JitUnsupportedError, check_jit_supported
from repro.sim.soa import SoaUnsupportedError
from repro.workloads.source import SyntheticSource
from repro.workloads.synthetic import SharingProfile


def _machine(**overrides):
    machine = default_machine(algorithm="lazy", cores_per_cmp=1, num_cmps=2)
    ring_overrides = {
        key: overrides.pop(key)
        for key in ("link_occupancy", "serialize_snoop_port")
        if key in overrides
    }
    tracing_overrides = {
        key: overrides.pop(key)
        for key in ("enabled", "sample_window")
        if key in overrides
    }
    if ring_overrides:
        machine = dataclasses.replace(
            machine, ring=dataclasses.replace(machine.ring, **ring_overrides)
        )
    if tracing_overrides:
        machine = dataclasses.replace(
            machine,
            tracing=dataclasses.replace(machine.tracing, **tracing_overrides),
        )
    if overrides:
        machine = dataclasses.replace(machine, **overrides)
    return machine


def _source():
    return SyntheticSource(
        SharingProfile(
            name="envelope",
            num_cores=2,
            cores_per_cmp=1,
            accesses_per_core=20,
            seed=5,
        )
    )


#: (flag id, machine kwargs, extra constructor kwargs).
ENVELOPE_FLAGS = [
    ("link_occupancy", {"link_occupancy": True}, {}),
    ("serialize_snoop_port", {"serialize_snoop_port": True}, {}),
    ("filter_write_snoops", {"filter_write_snoops": True}, {}),
    ("check_invariants", {"check_invariants": True}, {}),
    ("track_versions", {"track_versions": True}, {}),
    ("tracing", {}, {"trace_sink": InMemorySink()}),
    ("sample_window", {"sample_window": 50}, {}),
]


def _flag_id(entry) -> str:
    return entry[0]


@pytest.mark.parametrize("core", ["soa", "jit"])
@pytest.mark.parametrize("entry", ENVELOPE_FLAGS, ids=_flag_id)
def test_array_cores_raise_cleanly_outside_envelope(core, entry):
    flag, machine_kwargs, extra = entry
    machine = _machine(**machine_kwargs)
    with pytest.raises(SoaUnsupportedError) as excinfo:
        REGISTRY.create(
            "core",
            core,
            machine,
            build_algorithm("lazy"),
            _source(),
            **extra,
        )
    message = str(excinfo.value)
    assert "core=%s does not support" % core in message
    assert "use core=object" in message


@pytest.mark.parametrize("entry", ENVELOPE_FLAGS, ids=_flag_id)
def test_object_core_runs_every_envelope_flag(entry):
    flag, machine_kwargs, extra = entry
    machine = _machine(**machine_kwargs)
    result = REGISTRY.create(
        "core",
        "object",
        machine,
        build_algorithm("lazy"),
        _source(),
        **extra,
    ).run()
    assert result.stats.reads + result.stats.writes > 0


def test_jit_error_is_a_soa_error_subclass():
    """CLI fallback handling catches ``SoaUnsupportedError`` once and
    covers both array cores."""
    assert issubclass(JitUnsupportedError, SoaUnsupportedError)


def test_jit_rejects_dynamic_choose_algorithms():
    """Algorithms whose ``choose`` consults a live pressure source
    cannot be table-compiled; the jit envelope names them."""

    machine = _machine()
    algorithm = build_algorithm("superset_hybrid")
    algorithm._energy_pressure = lambda: 0.0
    with pytest.raises(SoaUnsupportedError) as excinfo:
        check_jit_supported(machine, algorithm)
    assert "dynamic choose()" in str(excinfo.value)

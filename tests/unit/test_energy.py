"""Unit tests for the energy model."""

from __future__ import annotations

import pytest

from repro.config import EnergyConfig
from repro.energy.model import EnergyModel


def model(kind="superset", **kwargs):
    return EnergyModel(EnergyConfig(**kwargs), predictor_kind=kind)


def test_ring_crossing_uses_paper_constant():
    m = model()
    m.charge_ring_crossing()
    assert m.total == pytest.approx(3.17)
    m.charge_ring_crossing(count=9)
    assert m.breakdown.ring_links == pytest.approx(10 * 3.17)


def test_snoop_energy_uses_paper_constant():
    m = model()
    m.charge_snoop(count=4)
    assert m.breakdown.snoops == pytest.approx(4 * 0.69)


def test_predictor_energy_depends_on_kind():
    superset = model("superset")
    superset.charge_predictor_lookup(10)
    subset = model("subset")
    subset.charge_predictor_lookup(10)
    none = model("none")
    none.charge_predictor_lookup(10)
    assert superset.breakdown.predictor_lookups > (
        subset.breakdown.predictor_lookups
    )
    assert none.breakdown.predictor_lookups == 0.0


def test_perfect_predictor_costs_nothing():
    m = model("perfect")
    m.charge_predictor_lookup(100)
    m.charge_predictor_update(100)
    assert m.total == 0.0


def test_downgrade_costs_memory_energy():
    m = model("exact")
    m.charge_downgrade()
    m.charge_downgrade_writeback()
    m.charge_downgrade_reread()
    assert m.breakdown.downgrade_memory == pytest.approx(48.0)
    assert m.breakdown.downgrade_ops == pytest.approx(0.30)


def test_total_sums_all_categories():
    m = model("exact")
    m.charge_ring_crossing()
    m.charge_snoop()
    m.charge_predictor_lookup()
    m.charge_predictor_update()
    m.charge_downgrade()
    m.charge_downgrade_writeback()
    expected = 3.17 + 0.69 + 0.08 + 0.08 + 0.30 + 24.0
    assert m.total == pytest.approx(expected)


def test_as_dict_roundtrip():
    m = model()
    m.charge_ring_crossing()
    data = m.breakdown.as_dict()
    assert data["ring_links"] == pytest.approx(3.17)
    assert data["total"] == pytest.approx(m.total)
    assert set(data) == {
        "ring_links",
        "snoops",
        "predictor_lookups",
        "predictor_updates",
        "downgrade_ops",
        "downgrade_memory",
        "total",
    }

"""Unit tests for the set-associative LRU cache."""

from __future__ import annotations

import pytest

from repro.config import CacheConfig
from repro.coherence.cache import SetAssociativeCache
from repro.coherence.states import LineState


def make_cache(num_lines=16, assoc=4, **kwargs):
    return SetAssociativeCache(
        CacheConfig(num_lines=num_lines, associativity=assoc), **kwargs
    )


def test_fill_and_lookup():
    cache = make_cache()
    cache.fill(100, LineState.S)
    line = cache.lookup(100)
    assert line is not None
    assert line.state is LineState.S
    assert 100 in cache


def test_lookup_miss_returns_none():
    cache = make_cache()
    assert cache.lookup(5) is None
    assert cache.state_of(5) is LineState.I


def test_fill_rejects_invalid_state():
    cache = make_cache()
    with pytest.raises(ValueError):
        cache.fill(1, LineState.I)


def test_same_set_conflict_evicts_lru():
    cache = make_cache(num_lines=8, assoc=2)  # 4 sets
    # Addresses 0, 4, 8 all map to set 0.
    cache.fill(0, LineState.S)
    cache.fill(4, LineState.S)
    victim = cache.fill(8, LineState.S)
    assert victim is not None
    assert victim.address == 0
    assert 0 not in cache
    assert 4 in cache and 8 in cache


def test_lookup_refreshes_lru_order():
    cache = make_cache(num_lines=8, assoc=2)
    cache.fill(0, LineState.S)
    cache.fill(4, LineState.S)
    cache.lookup(0)  # 0 becomes MRU; 4 is now LRU
    victim = cache.fill(8, LineState.S)
    assert victim.address == 4
    assert 0 in cache


def test_state_of_does_not_touch_lru():
    cache = make_cache(num_lines=8, assoc=2)
    cache.fill(0, LineState.S)
    cache.fill(4, LineState.S)
    cache.state_of(0)  # must NOT refresh 0
    victim = cache.fill(8, LineState.S)
    assert victim.address == 0


def test_dirty_eviction_flag():
    cache = make_cache(num_lines=8, assoc=2)
    cache.fill(0, LineState.D, version=3)
    cache.fill(4, LineState.S)
    victim = cache.fill(8, LineState.S)
    assert victim.address == 0
    assert victim.dirty
    assert victim.version == 3
    assert cache.dirty_evictions == 1


def test_set_state_transitions():
    cache = make_cache()
    cache.fill(7, LineState.E)
    cache.set_state(7, LineState.SG)
    assert cache.state_of(7) is LineState.SG


def test_set_state_to_invalid_removes_line():
    cache = make_cache()
    cache.fill(7, LineState.S)
    cache.set_state(7, LineState.I)
    assert 7 not in cache


def test_set_state_on_absent_line_raises():
    cache = make_cache()
    with pytest.raises(KeyError):
        cache.set_state(3, LineState.S)


def test_invalidate_returns_line():
    cache = make_cache()
    cache.fill(9, LineState.T, version=2)
    line = cache.invalidate(9)
    assert line is not None and line.version == 2
    assert cache.invalidate(9) is None


def test_supplier_gain_and_loss_callbacks():
    gained, lost = [], []
    cache = make_cache(
        on_state_gain=gained.append, on_state_loss=lost.append
    )
    cache.fill(1, LineState.E)  # supplier gain
    cache.fill(2, LineState.S)  # not a supplier: no callback
    assert gained == [1]
    cache.set_state(1, LineState.SL)  # supplier -> non-supplier
    assert lost == [1]
    cache.set_state(1, LineState.S)  # non-supplier -> non-supplier
    assert lost == [1]


def test_eviction_of_supplier_fires_loss_callback():
    lost = []
    cache = SetAssociativeCache(
        CacheConfig(num_lines=2, associativity=2), on_state_loss=lost.append
    )
    cache.fill(0, LineState.SG)
    cache.fill(2, LineState.S)
    cache.fill(4, LineState.S)  # evicts LRU = 0, a supplier
    assert lost == [0]


def test_invalidate_supplier_fires_loss_callback():
    lost = []
    cache = make_cache(on_state_loss=lost.append)
    cache.fill(3, LineState.D)
    cache.invalidate(3)
    assert lost == [3]


def test_refill_updates_state_in_place():
    gained = []
    cache = make_cache(on_state_gain=gained.append)
    cache.fill(5, LineState.S, version=1)
    victim = cache.fill(5, LineState.SG, version=2)
    assert victim is None
    assert cache.state_of(5) is LineState.SG
    line = cache.lookup(5)
    assert line.version == 2
    assert gained == [5]  # S -> SG is a supplier gain


def test_len_counts_resident_lines():
    cache = make_cache()
    for address in range(5):
        cache.fill(address, LineState.S)
    assert len(cache) == 5


def test_capacity_never_exceeded():
    cache = make_cache(num_lines=16, assoc=4)
    for address in range(200):
        cache.fill(address, LineState.S)
    assert len(cache) <= 16
    for set_index in range(cache.config.num_sets):
        assert cache.occupancy_of_set(set_index) <= 4


def test_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(num_lines=10, associativity=4)


def test_fill_eviction_counters():
    cache = make_cache(num_lines=4, assoc=2)
    for address in range(8):
        cache.fill(address, LineState.S)
    assert cache.fills == 8
    assert cache.evictions == 4

"""Unit tests for trace containers and the synthetic generator."""

from __future__ import annotations

import dataclasses

import pytest

from repro.workloads.profiles import (
    WORKLOAD_PROFILES,
    build_workload,
    specjbb_profile,
    splash2_profile,
    specweb_profile,
)
from repro.workloads.synthetic import (
    SharingProfile,
    generate_workload,
    scramble,
)
from repro.workloads.trace import Access, WorkloadTrace


# ----------------------------------------------------------------------
# Trace containers


def test_access_validation():
    with pytest.raises(ValueError):
        Access(address=-1, is_write=False, think_time=0)
    with pytest.raises(ValueError):
        Access(address=0, is_write=False, think_time=-5)


def test_workload_shape_properties():
    workload = WorkloadTrace(
        name="t",
        cores_per_cmp=2,
        traces=[
            [Access(1, False, 0), Access(2, True, 3)],
            [Access(1, False, 1)],
            [],
            [Access(9, False, 2)],
        ],
    )
    assert workload.num_cores == 4
    assert workload.num_cmps == 2
    assert workload.total_accesses == 4
    assert workload.cmp_of_core(0) == 0
    assert workload.cmp_of_core(3) == 1
    assert workload.address_footprint() == 3
    stats = workload.stats()
    assert stats["write_fraction"] == pytest.approx(0.25)


def test_workload_validation():
    workload = WorkloadTrace(name="bad", cores_per_cmp=2, traces=[[]])
    with pytest.raises(ValueError):
        workload.validate()
    with pytest.raises(ValueError):
        WorkloadTrace(name="empty", cores_per_cmp=1).validate()


# ----------------------------------------------------------------------
# Scrambler


def test_scramble_is_deterministic():
    assert scramble(12345) == scramble(12345)


def test_scramble_no_collisions_over_pools():
    seen = set()
    for logical in range(20000):
        physical = scramble(logical)
        assert physical not in seen
        seen.add(physical)


def test_scramble_spreads_low_bits():
    # Consecutive logical lines must not share obvious low-bit
    # structure (this is what defeats systematic Bloom aliasing).
    low_bits = {scramble(i) & 0x3FF for i in range(1024)}
    assert len(low_bits) > 600


# ----------------------------------------------------------------------
# Synthetic generator


def small_profile(**kwargs):
    defaults = dict(
        name="small",
        num_cores=4,
        cores_per_cmp=2,
        accesses_per_core=300,
        p_shared=0.5,
        p_cold=0.1,
        shared_lines=64,
        private_lines=64,
        seed=11,
    )
    defaults.update(kwargs)
    return SharingProfile(**defaults)


def test_generator_is_deterministic():
    a = generate_workload(small_profile())
    b = generate_workload(small_profile())
    assert a.traces == b.traces


def test_generator_seed_changes_trace():
    a = generate_workload(small_profile(seed=1))
    b = generate_workload(small_profile(seed=2))
    assert a.traces != b.traces


def test_generator_core_count_and_length():
    workload = generate_workload(small_profile())
    assert workload.num_cores == 4
    for trace in workload.traces:
        # Migratory pairs may add accesses beyond the nominal count.
        assert len(trace) >= 300


def test_private_pools_are_disjoint_across_cores():
    profile = small_profile(p_shared=0.0, p_cold=0.0)
    workload = generate_workload(profile)
    footprints = [
        {access.address for access in trace} for trace in workload.traces
    ]
    for i in range(len(footprints)):
        for j in range(i + 1, len(footprints)):
            assert not footprints[i] & footprints[j]


def test_shared_pool_is_shared_across_cores():
    profile = small_profile(p_shared=1.0, p_cold=0.0)
    workload = generate_workload(profile)
    footprints = [
        {access.address for access in trace} for trace in workload.traces
    ]
    common = footprints[0]
    for other in footprints[1:]:
        common = common & other
    assert common  # hot shared lines appear in every core's trace


def test_cold_pool_never_reused():
    profile = small_profile(p_shared=0.0, p_cold=1.0)
    workload = generate_workload(profile)
    for trace in workload.traces:
        addresses = [access.address for access in trace]
        assert len(addresses) == len(set(addresses))


def test_migratory_lines_generate_rmw_pairs():
    profile = small_profile(
        migratory_fraction=1.0, p_shared=1.0, p_cold=0.0
    )
    workload = generate_workload(profile)
    trace = workload.traces[0]
    # Every read of a migratory line is followed by a write to it.
    reads = [
        i for i, access in enumerate(trace[:-1]) if not access.is_write
    ]
    for i in reads:
        assert trace[i + 1].is_write
        assert trace[i + 1].address == trace[i].address


def test_profile_validation():
    with pytest.raises(ValueError):
        SharingProfile(num_cores=5, cores_per_cmp=2)
    with pytest.raises(ValueError):
        SharingProfile(p_shared=0.8, p_cold=0.4)
    with pytest.raises(ValueError):
        SharingProfile(migratory_fraction=1.5)


def test_profile_scaled():
    profile = small_profile().scaled(42)
    assert profile.accesses_per_core == 42
    assert profile.name == "small"


# ----------------------------------------------------------------------
# Named profiles


def test_named_profiles_exist():
    assert set(WORKLOAD_PROFILES) == {"splash2", "specjbb", "specweb"}


def test_splash2_shape():
    profile = splash2_profile()
    assert profile.num_cores == 32
    assert profile.cores_per_cmp == 4


def test_spec_profiles_shape():
    for factory in (specjbb_profile, specweb_profile):
        profile = factory()
        assert profile.num_cores == 8
        assert profile.cores_per_cmp == 1


def test_specjbb_shares_least():
    assert specjbb_profile().p_shared < specweb_profile().p_shared
    assert specjbb_profile().p_shared < splash2_profile().p_shared


def test_build_workload_aliases():
    a = build_workload("SPLASH-2", accesses_per_core=50)
    assert a.name == "SPLASH-2"
    b = build_workload("jbb", accesses_per_core=50)
    assert b.name == "SPECjbb"
    with pytest.raises(ValueError):
        build_workload("nosuch")

"""Unit tests for the parallel execution layer (in-process paths).

Pool-based execution is covered by the integration suite
(``tests/integration/test_parallel_equivalence.py``); these tests pin
down the spec/caching semantics without spawning processes.
"""

from __future__ import annotations

import pytest

from repro.config import default_machine
from repro.harness import parallel as parallel_module
from repro.harness.experiments import ExperimentMatrix, run_experiment
from repro.harness.parallel import (
    RunSpec,
    _cached_source,
    default_jobs,
    execute_spec,
    run_specs,
)
from repro.harness.result_cache import ResultCache

TINY = 100


def test_run_spec_is_hashable_and_frozen():
    spec = RunSpec("lazy", "specjbb", accesses_per_core=TINY)
    assert spec == RunSpec("lazy", "specjbb", accesses_per_core=TINY)
    assert hash(spec) == hash(
        RunSpec("lazy", "specjbb", accesses_per_core=TINY)
    )
    with pytest.raises(AttributeError):
        spec.seed = 1


def test_resolve_config_predictor_override():
    spec = RunSpec("subset", "specjbb", predictor="Sub512")
    assert spec.resolve_config(1).predictor.entries == 512
    # A full config override still honours the predictor name.
    base = default_machine(algorithm="subset", cores_per_cmp=1)
    spec = RunSpec("subset", "specjbb", predictor="Sub8k", config=base)
    assert spec.resolve_config(1).predictor.entries == 8192


def test_execute_spec_matches_run_experiment():
    spec = RunSpec(
        "eager", "specjbb", accesses_per_core=TINY,
        warmup_fraction=0.35,
    )
    via_spec = execute_spec(spec)
    via_helper = run_experiment(
        "eager", "specjbb", accesses_per_core=TINY,
        warmup_fraction=0.35,
    )
    assert via_spec.stats == via_helper.stats
    assert via_spec.exec_time == via_helper.exec_time
    assert via_spec.energy == via_helper.energy


def test_run_specs_preserves_input_order():
    specs = [
        RunSpec("eager", "specjbb", accesses_per_core=TINY,
                warmup_fraction=0.35),
        RunSpec("lazy", "specjbb", accesses_per_core=TINY,
                warmup_fraction=0.35),
    ]
    results = run_specs(specs, jobs=1)
    assert [r.algorithm for r in results] == ["eager", "lazy"]


def test_default_jobs_respects_affinity_mask(monkeypatch):
    # Under cgroup limits or taskset the process may be allowed fewer
    # CPUs than the machine has; default_jobs() must size the pool to
    # the allowed set, not the hardware.
    monkeypatch.setattr(
        parallel_module.os, "sched_getaffinity", lambda pid: {0, 3}
    )
    monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 64)
    assert default_jobs() == 2


def test_default_jobs_falls_back_without_affinity(monkeypatch):
    # macOS/Windows have no sched_getaffinity.
    monkeypatch.delattr(
        parallel_module.os, "sched_getaffinity", raising=False
    )
    monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 6)
    assert default_jobs() == 6
    monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: None)
    assert default_jobs() == 1


def test_run_specs_jobs_zero_means_auto():
    assert default_jobs() >= 1
    results = run_specs(
        [RunSpec("lazy", "specjbb", accesses_per_core=TINY,
                 warmup_fraction=0.35)],
        jobs=0,
    )
    assert results[0].algorithm == "lazy"


def test_source_resolved_once_per_workload(monkeypatch):
    """A sweep/matrix over one workload must not re-resolve the source
    per point (the old run_sweep rebuilt the trace for every swept
    value)."""
    calls = []
    real = parallel_module.resolve_source

    def counting(name, accesses_per_core=0, seed=0, num_cmps=0,
                 think_scale=1.0):
        calls.append((name, accesses_per_core, seed))
        return real(
            name,
            accesses_per_core=accesses_per_core,
            seed=seed,
            num_cmps=num_cmps,
            think_scale=think_scale,
        )

    _cached_source.cache_clear()
    monkeypatch.setattr(parallel_module, "resolve_source", counting)
    specs = [
        RunSpec(algorithm, "specjbb", accesses_per_core=TINY,
                warmup_fraction=0.35)
        for algorithm in ("lazy", "eager", "oracle")
    ]
    run_specs(specs, jobs=1)
    assert calls == [("specjbb", TINY, 0)]
    _cached_source.cache_clear()


def test_sweep_resolves_source_once(monkeypatch):
    from repro.harness.sweep import sweep_ring_field

    calls = []
    real = parallel_module.resolve_source

    def counting(name, accesses_per_core=0, seed=0, num_cmps=0,
                 think_scale=1.0):
        calls.append(name)
        return real(
            name,
            accesses_per_core=accesses_per_core,
            seed=seed,
            num_cmps=num_cmps,
            think_scale=think_scale,
        )

    _cached_source.cache_clear()
    monkeypatch.setattr(parallel_module, "resolve_source", counting)
    sweep = sweep_ring_field(
        "snoop_time",
        [10, 55, 110],
        algorithm="lazy",
        workload="specjbb",
        accesses_per_core=TINY,
        warmup_fraction=0.0,
    )
    assert len(sweep.points) == 3
    assert calls == ["specjbb"]
    _cached_source.cache_clear()


def test_matrix_warm_cache_runs_zero_simulations(tmp_path):
    """The acceptance criterion: a second matrix (fresh process state
    simulated by a fresh ExperimentMatrix) over a warm cache performs
    zero new simulations - every cell is a cache hit."""
    root = tmp_path / "cache"
    kwargs = dict(
        accesses_per_core=TINY,
        algorithms=("lazy", "eager"),
        workloads=("specjbb",),
        jobs=1,
    )

    cold_cache = ResultCache(root=root)
    cold = ExperimentMatrix(result_cache=cold_cache, **kwargs)
    cold_fig6 = cold.fig6_snoops_per_request()
    assert cold_cache.misses > 0 and cold_cache.stores > 0

    warm_cache = ResultCache(root=root)
    warm = ExperimentMatrix(result_cache=warm_cache, **kwargs)
    warm_fig6 = warm.fig6_snoops_per_request()
    assert warm_cache.misses == 0, "warm run must not simulate"
    assert warm_cache.hits == cold_cache.stores
    assert warm_fig6 == cold_fig6

    # Another figure derived from the same matrix is also free.
    warm.fig8_execution_time()
    assert warm_cache.misses == 0


def test_matrix_memoizes_in_memory(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    matrix = ExperimentMatrix(
        accesses_per_core=TINY,
        algorithms=("lazy",),
        workloads=("specjbb",),
        jobs=1,
        result_cache=cache,
    )
    first = matrix.result("lazy", "specjbb")
    second = matrix.result("lazy", "specjbb")
    assert first is second
    assert cache.hits == 0  # in-memory memo short-circuits the disk

"""Unit tests for the observability layer (repro.obs).

Sinks, JSONL round-trips, filtering/rendering, the metrics timeline,
and - most importantly - the per-transaction lifecycle auditors,
exercised against hand-built traces that violate each rule in turn.
"""

from __future__ import annotations

import pytest

from repro.obs.audit import TraceAuditor, Violation
from repro.obs.jsonl import (
    event_from_json,
    event_to_json,
    read_trace,
    write_trace,
)
from repro.obs.render import filter_events, render_timeline
from repro.obs.trace import (
    NO_TXN,
    EventType,
    InMemorySink,
    JsonlStreamSink,
    TraceEvent,
)

# ----------------------------------------------------------------------
# Trace-building helpers

ADDRESS = 0x2A40


def _ev(time, type_, txn=1, node=0, address=ADDRESS, **data):
    return TraceEvent(time, type_, txn, node, address, data)


def _clean_txn(txn=1, node=0, t0=100, num_cmps=2):
    """A minimal valid read transaction on a ``num_cmps``-node ring."""
    events = [
        _ev(t0, EventType.ISSUE, txn, node,
            kind="read", core=0, squashed=False)
    ]
    time, current = t0, node
    for _ in range(num_cmps):
        to = (current + 1) % num_cmps
        events.append(
            _ev(time, EventType.HOP, txn, current,
                to=to, arrival=time + 39, mode="split",
                satisfied=False, squashed=False)
        )
        time += 39
        current = to
    events.append(
        _ev(time + 400, EventType.FILL, txn, node,
            source="memory", version=0)
    )
    events.append(
        _ev(time + 400, EventType.RETIRE, txn, node,
            kind="read", squashed=False)
    )
    return events


def _audit(events, num_cmps=2):
    return TraceAuditor(num_cmps=num_cmps).audit(events)


def _rules(violations):
    return [violation.rule for violation in violations]


# ----------------------------------------------------------------------
# Sinks

def test_in_memory_sink_collects_in_order():
    sink = InMemorySink()
    events = _clean_txn()
    for event in events:
        sink.emit(event)
    assert sink.events == events
    sink.close()
    sink.close()  # idempotent


def test_jsonl_stream_sink_round_trips(tmp_path):
    path = tmp_path / "trace.jsonl"
    events = _clean_txn()
    with JsonlStreamSink(str(path), meta={"num_cmps": 2}) as sink:
        for event in events:
            sink.emit(event)
    meta, loaded = read_trace(str(path))
    assert meta == {"num_cmps": 2}
    assert loaded == events


def test_jsonl_stream_sink_rejects_emit_after_close(tmp_path):
    sink = JsonlStreamSink(str(tmp_path / "trace.jsonl"))
    sink.close()
    with pytest.raises(ValueError):
        sink.emit(_clean_txn()[0])


def test_sinks_resolve_through_registry():
    from repro.registry import REGISTRY

    assert "memory" in REGISTRY.names("sink")
    assert "jsonl" in REGISTRY.names("sink")
    assert isinstance(REGISTRY.create("sink", "memory"), InMemorySink)


# ----------------------------------------------------------------------
# JSONL format

def test_event_json_round_trip():
    event = _ev(7, EventType.SNOOP, txn=3, node=5,
                kind="read", primitive="forward", snoop_done=62,
                supplied=False)
    assert event_from_json(event_to_json(event)) == event


def test_write_read_trace_round_trip(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    events = _clean_txn() + [
        _ev(900, EventType.DOWNGRADE, NO_TXN, 1, writeback=True)
    ]
    count = write_trace(path, events, meta={"algorithm": "lazy"})
    assert count == len(events)
    meta, loaded = read_trace(path)
    assert meta["algorithm"] == "lazy"
    assert loaded == events


def test_read_trace_reports_malformed_line_number(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"meta": {}}\nnot json at all\n')
    with pytest.raises(ValueError, match=r":2:"):
        read_trace(str(path))


def test_read_trace_reports_malformed_event(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"t": 0, "ev": "no-such-event", "txn": 1, '
                    '"node": 0, "addr": 0, "data": {}}\n')
    with pytest.raises(ValueError, match=r":1:"):
        read_trace(str(path))


# ----------------------------------------------------------------------
# Filtering and rendering

def test_filter_by_address_and_txn():
    txn_a = _clean_txn(txn=1)
    txn_b = [event._replace(address=0x9999) for event in _clean_txn(txn=2)]
    events = txn_a + txn_b
    assert filter_events(events, address=ADDRESS) == txn_a
    assert filter_events(events, txn=2) == txn_b
    assert filter_events(events, address=ADDRESS, txn=2) == []


def test_filter_by_node_keeps_whole_transactions():
    events = _clean_txn(txn=1, node=0) + [
        _ev(900, EventType.DOWNGRADE, NO_TXN, 1, writeback=False)
    ]
    selected = filter_events(events, node=1)
    # Node 1 saw one hop of txn 1, so the whole transaction is kept,
    # plus the machine event at node 1.
    assert {event.txn for event in selected} == {1, NO_TXN}
    assert len([e for e in selected if e.txn == 1]) == len(events) - 1


def test_render_timeline_groups_and_elides():
    events = _clean_txn(txn=1) + _clean_txn(txn=2) + [
        _ev(900, EventType.DOWNGRADE, NO_TXN, 1, writeback=False)
    ]
    text = render_timeline(events, limit=1)
    assert "txn 1  read" in text
    assert "txn 2" not in text
    assert "machine events:" in text
    assert "1 more transaction(s) elided" in text


def test_render_timeline_empty():
    assert "no events match" in render_timeline([])


# ----------------------------------------------------------------------
# Auditor: clean traces

def test_audit_clean_txn_passes():
    assert _audit(_clean_txn()) == []


def test_audit_ignores_machine_events():
    events = _clean_txn() + [
        _ev(900, EventType.DOWNGRADE, NO_TXN, 1, writeback=True)
    ]
    assert _audit(events) == []


def test_audit_clean_squashed_txn_passes():
    # The conflicting in-flight write that justifies the squash (the
    # serialization sweep checks squashes are never gratuitous).
    blocker = [
        _ev(0, EventType.ISSUE, txn=2, node=1,
            kind="write", core=2, squashed=False),
        _ev(0, EventType.HOP, txn=2, node=1, to=0, arrival=39,
            mode="split", satisfied=False, squashed=False),
        _ev(39, EventType.HOP, txn=2, node=0, to=1, arrival=78,
            mode="split", satisfied=False, squashed=False),
        _ev(500, EventType.FILL, txn=2, node=1,
            source="memory", version=1),
        _ev(500, EventType.RETIRE, txn=2, node=1,
            kind="write", squashed=False),
    ]
    events = blocker[:3] + [
        _ev(1, EventType.ISSUE, kind="read", core=0, squashed=True),
        _ev(1, EventType.HOP, node=0, to=1, arrival=40, mode="combined",
            satisfied=False, squashed=True),
        _ev(40, EventType.HOP, node=1, to=0, arrival=79, mode="combined",
            satisfied=False, squashed=True),
        _ev(79, EventType.SQUASH),
        _ev(79, EventType.RETIRE, kind="read", squashed=True),
        _ev(279, EventType.RETRY),
    ] + blocker[3:]
    assert _audit(events) == []


# ----------------------------------------------------------------------
# Auditor: each rule violated in turn

def test_audit_missing_retire():
    events = [e for e in _clean_txn() if e.type is not EventType.RETIRE]
    assert "lifecycle" in _rules(_audit(events))


def test_audit_double_issue():
    events = _clean_txn()
    events.insert(1, events[0])
    assert "lifecycle" in _rules(_audit(events))


def test_audit_event_after_retirement():
    events = _clean_txn()
    events.append(_ev(2000, EventType.FILL, source="memory", version=0))
    assert "lifecycle" in _rules(_audit(events))


def test_audit_retire_before_issue():
    events = _clean_txn(t0=100)
    retire = events[-1]
    events[-1] = retire._replace(time=50)
    assert "time" in _rules(_audit(events))


def test_audit_wrong_hop_count():
    events = [
        e
        for e in _clean_txn()
        if not (e.type is EventType.HOP and e.node == 1)
    ]
    violations = _audit(events)
    assert _rules(violations) == ["conservation"]
    assert "crossed 1 segments" in violations[0].message


def test_audit_hop_teleport():
    events = _clean_txn(num_cmps=4)
    hops = [e for e in events if e.type is EventType.HOP]
    index = events.index(hops[1])
    events[index] = hops[1]._replace(data={**hops[1].data, "to": 3})
    assert "conservation" in _rules(_audit(events, num_cmps=4))


def test_audit_snoop_then_forward_must_recombine():
    events = _clean_txn()
    hops = [e for e in events if e.type is EventType.HOP]
    snoop = _ev(hops[1].time, EventType.SNOOP, node=hops[1].node,
                kind="read", primitive="snoop_then_forward",
                snoop_done=hops[1].time + 55, supplied=False)
    events.insert(events.index(hops[1]), snoop)
    # The hop after a snoop_then_forward snoop is "split", not
    # "combined": the primitive illegally emitted a separate reply.
    violations = _audit(events)
    assert "recombination" in _rules(violations)


def test_audit_single_supplier_invariant():
    events = _clean_txn()
    supply = _ev(150, EventType.SUPPLY, node=1, kind="read",
                 form="reply", version=0, data_arrival=300)
    events.insert(2, supply)
    events.insert(3, supply._replace(node=0))
    assert "supply" in _rules(_audit(events))


def test_audit_no_snoop_after_combined_supply():
    events = _clean_txn()
    supply = _ev(150, EventType.SUPPLY, node=1, kind="read",
                 form="combined", version=0, data_arrival=300)
    late_snoop = _ev(160, EventType.SNOOP, node=1, kind="read",
                     primitive="forward_then_snoop", snoop_done=215,
                     supplied=False)
    events.insert(2, supply)
    events.insert(3, late_snoop)
    assert "supply" in _rules(_audit(events))


@pytest.mark.parametrize(
    "kind,prediction,truth,expect_violation",
    [
        ("subset", True, False, True),    # false positive forbidden
        ("subset", False, True, False),   # false negative allowed
        ("superset", False, True, True),  # false negative forbidden
        ("superset", True, False, False),  # false positive allowed
        ("exact", True, False, True),
        ("exact", False, True, True),
        ("perfect", True, False, True),
        ("none", True, False, False),     # no guarantee to break
    ],
)
def test_audit_predictor_guarantees(kind, prediction, truth,
                                    expect_violation):
    events = _clean_txn()
    lookup = _ev(150, EventType.PREDICTOR, node=1, kind=kind,
                 prediction=prediction, truth=truth)
    events.insert(2, lookup)
    rules = _rules(_audit(events))
    assert ("predictor" in rules) == expect_violation


def test_audit_squashed_txn_must_not_fill():
    events = [
        _ev(0, EventType.ISSUE, kind="read", core=0, squashed=True),
        _ev(0, EventType.HOP, node=0, to=1, arrival=39, mode="combined",
            satisfied=False, squashed=True),
        _ev(39, EventType.HOP, node=1, to=0, arrival=78, mode="combined",
            satisfied=False, squashed=True),
        _ev(50, EventType.FILL, source="memory", version=0),
        _ev(78, EventType.SQUASH),
        _ev(78, EventType.RETIRE, kind="read", squashed=True),
        _ev(278, EventType.RETRY),
    ]
    assert "squash" in _rules(_audit(events))


def test_audit_non_squashed_txn_must_fill_once():
    events = [
        e for e in _clean_txn() if e.type is not EventType.FILL
    ]
    assert "fill" in _rules(_audit(events))


def test_audit_non_squashed_txn_must_not_retry():
    events = _clean_txn()
    events.append(_ev(2000, EventType.RETRY))
    assert "squash" in _rules(_audit(events))


def test_violation_str_mentions_rule_and_txn():
    text = str(Violation(txn=7, rule="fill", time=42, message="boom"))
    assert "txn 7" in text
    assert "fill" in text
    assert "boom" in text


def test_auditor_rejects_degenerate_ring():
    with pytest.raises(ValueError):
        TraceAuditor(num_cmps=1)


# ----------------------------------------------------------------------
# Metrics timeline

def test_timeline_samples_phases_and_windows():
    from repro.obs.runner import run_traced

    traced = run_traced(
        "lazy",
        "specjbb",
        accesses_per_core=200,
        warmup_fraction=0.35,
        sample_window=5000,
    )
    samples = traced.samples
    assert samples, "sampler never fired"
    assert {sample.phase for sample in samples} == {"warmup", "measure"}
    times = [sample.time for sample in samples]
    assert times == sorted(times)
    assert all(
        later - earlier == 5000
        for earlier, later in zip(times, times[1:])
    )
    assert all(sample.inflight >= 0 for sample in samples)
    assert all(sample.requests >= 0 for sample in samples)
    # Deltas are consistent with their own ratio helper.
    busy = next((s for s in samples if s.requests), None)
    if busy is not None:
        assert busy.snoops_per_request == busy.snoops / busy.requests


def test_timeline_render_is_tabular():
    from repro.obs.runner import run_traced
    from repro.sim.system import RingMultiprocessor  # noqa: F401

    traced = run_traced(
        "lazy", "specjbb", accesses_per_core=100, sample_window=10000
    )
    # Rebuild a timeline-like rendering from the samples.
    from repro.obs.timeline import MetricsTimeline

    timeline = MetricsTimeline.__new__(MetricsTimeline)
    timeline.samples = traced.samples
    text = timeline.render()
    assert "snoops/req" in text
    assert len(text.splitlines()) == len(traced.samples) + 1


def test_timeline_rejects_bad_window():
    from repro.obs.timeline import MetricsTimeline

    with pytest.raises(ValueError):
        MetricsTimeline(object(), 0)

"""Unit tests for the presence predictor (write-snoop filtering
extension)."""

from __future__ import annotations

import pytest

from repro.core.presence import PresencePredictor


def test_absent_line_is_filtered():
    predictor = PresencePredictor(fields=(6, 5))
    assert not predictor.may_be_present(0x123)
    assert predictor.filtered == 1


def test_added_line_is_present():
    predictor = PresencePredictor(fields=(6, 5))
    predictor.line_added(0x123)
    assert predictor.may_be_present(0x123)


def test_reference_counting_across_cores():
    """Two copies in the CMP: the line stays present until the second
    copy leaves."""
    predictor = PresencePredictor(fields=(6, 5))
    predictor.line_added(0x55)
    predictor.line_added(0x55)
    predictor.line_removed(0x55)
    assert predictor.may_be_present(0x55)
    predictor.line_removed(0x55)
    assert not predictor.may_be_present(0x55)


def test_no_false_negatives_under_churn():
    predictor = PresencePredictor(fields=(5, 4))
    live = set()
    for i in range(500):
        address = (i * 37) % 200
        if address in live:
            predictor.line_removed(address)
            live.discard(address)
        else:
            predictor.line_added(address)
            live.add(address)
        for check in list(live)[:10]:
            assert predictor.may_be_present(check)


def test_counters():
    predictor = PresencePredictor(fields=(4,))
    predictor.line_added(1)
    predictor.may_be_present(1)
    predictor.may_be_present(2)
    assert predictor.updates == 1
    assert predictor.lookups == 2


def test_default_geometry():
    predictor = PresencePredictor()
    assert predictor.filter.total_counters == (1 << 15) + (1 << 11)
    assert predictor.access_latency == 2

"""The decision seam's data model and its CLI/registry surface.

Pins the :mod:`repro.core.decision` contract pointwise (the property
suite in ``tests/property/test_decision_policy_properties.py`` attacks
the same contract with random contexts): table evaluation, threshold
semantics, derived metadata, the ``uses_predictor`` resolution fix,
and the honest core/algorithm refusal the CLI builds on the registry's
``decision_inputs``/``dynamic_choose`` metadata.
"""

from __future__ import annotations

import pytest

from repro.config import default_machine
from repro.core.algorithms import Criticality, SupersetHybrid, build_algorithm
from repro.core.decision import (
    COUNTED_OUTPUTS,
    NEVER,
    DecisionContext,
    DecisionTable,
    as_context,
    uniform_table,
)
from repro.core.primitives import Primitive
from repro.harness.cli import (
    _all_algorithm_names,
    _parse_algorithm_list,
    _refuse_unsupported_core,
    build_parser,
)
from repro.registry import REGISTRY
from repro.sim.soa import SoaUnsupportedError
from repro.sim.system import RingMultiprocessor
from repro.workloads.source import SyntheticSource
from repro.workloads.synthetic import SharingProfile

FWD = Primitive.FORWARD
FTS = Primitive.FORWARD_THEN_SNOOP
STF = Primitive.SNOOP_THEN_FORWARD


# ----------------------------------------------------------------------
# DecisionContext / as_context


def test_as_context_coerces_legacy_bools():
    assert as_context(True) == DecisionContext(prediction=True)
    assert as_context(False) == DecisionContext(prediction=False)
    assert as_context(1).prediction is True
    ctx = DecisionContext(True, retries=3, waiters=2, ring_age=5)
    assert as_context(ctx) is ctx


def test_context_defaults_are_calm():
    ctx = DecisionContext(True)
    assert ctx.retries == 0
    assert ctx.waiters == 0
    assert ctx.ring_age == 0
    assert ctx.is_write is False


# ----------------------------------------------------------------------
# DecisionTable semantics


def test_uniform_table_has_no_criticality_axis():
    table = uniform_table(STF, FWD)
    assert not table.has_criticality()
    assert table.retry_threshold == NEVER
    assert table.waiter_threshold == NEVER
    # Critical row mirrors the calm row and stays unreachable: even an
    # absurdly urgent context evaluates on the calm row.
    urgent = DecisionContext(True, retries=10**6, waiters=10**6)
    assert table.decide(urgent) is STF
    assert table.primitives_on(True) == (STF,)
    assert table.primitives_on(False) == (FWD,)
    assert table.decision_inputs() == ("prediction",)


def test_criticality_table_switches_rows_on_either_threshold():
    table = DecisionTable(
        on_true=STF,
        on_false=FWD,
        critical_true=FTS,
        critical_false=FWD,
        retry_threshold=2,
        waiter_threshold=3,
    )
    assert table.has_criticality()
    assert table.decide(DecisionContext(True)) is STF
    assert table.decide(DecisionContext(True, retries=1)) is STF
    assert table.decide(DecisionContext(True, retries=2)) is FTS
    assert table.decide(DecisionContext(True, waiters=2)) is STF
    assert table.decide(DecisionContext(True, waiters=3)) is FTS
    # Negative predictions filter in both rows.
    assert table.decide(DecisionContext(False, retries=9)) is FWD
    assert table.primitives_on(True) == (STF, FTS)
    assert table.primitives_on(False) == (FWD,)
    assert table.decision_inputs() == ("prediction", "retries", "waiters")


def test_forwards_on_negative_consults_every_reachable_row():
    assert uniform_table(STF, FWD).forwards_on_negative()
    assert not uniform_table(STF, STF).forwards_on_negative()
    # Filtering only in the (reachable) critical row still demands a
    # no-false-negative predictor.
    critical_filter = DecisionTable(
        on_true=STF,
        on_false=STF,
        critical_true=FTS,
        critical_false=FWD,
        retry_threshold=1,
    )
    assert critical_filter.forwards_on_negative()


def test_registered_counted_outputs_are_known():
    for name in REGISTRY.names("algorithm"):
        algorithm = build_algorithm(name)
        table = algorithm.decision_table()
        if table is not None and table.counts is not None:
            assert table.counts in COUNTED_OUTPUTS


# ----------------------------------------------------------------------
# Algorithm-level seam behaviour


def test_criticality_rejects_degenerate_thresholds():
    with pytest.raises(ValueError):
        Criticality(retry_threshold=0)
    with pytest.raises(ValueError):
        Criticality(waiter_threshold=-1)


def test_criticality_choose_counts_critical_rows():
    algorithm = Criticality()
    assert algorithm.choose(DecisionContext(True)) is STF
    assert algorithm.critical_choices == 0
    assert algorithm.choose(DecisionContext(True, retries=1)) is FTS
    assert algorithm.choose(DecisionContext(False, waiters=4)) is FWD
    assert algorithm.critical_choices == 2
    algorithm.fold_choice_counts(3)
    assert algorithm.critical_choices == 5


def test_hybrid_table_retracts_under_pressure():
    algorithm = SupersetHybrid()
    assert algorithm.decision_table() is not None
    assert algorithm.decision_inputs() == ("prediction",)
    algorithm.set_energy_pressure(lambda: True)
    assert algorithm.decision_table() is None
    assert "energy_pressure" in algorithm.decision_inputs()
    assert algorithm.choose(DecisionContext(True)) is STF
    assert algorithm.conservative_choices == 1


def test_legacy_bool_choose_still_accepted():
    for name in REGISTRY.names("algorithm"):
        algorithm = build_algorithm(name)
        for prediction in (False, True):
            assert algorithm.choose(prediction) is algorithm.choose(
                DecisionContext(prediction)
            )


# ----------------------------------------------------------------------
# uses_predictor: resolved instance kind, not the class default


def test_uses_predictor_falls_back_to_class_default():
    assert not build_algorithm("lazy").uses_predictor()
    assert not build_algorithm("eager").uses_predictor()
    assert build_algorithm("subset").uses_predictor()
    assert build_algorithm("criticality").uses_predictor()


def test_uses_predictor_consults_bound_kind():
    algorithm = build_algorithm("subset")
    algorithm.bind_predictor_kind("none")
    assert not algorithm.uses_predictor()
    lazy = build_algorithm("lazy")
    lazy.bind_predictor_kind("subset")
    assert lazy.uses_predictor()


def test_system_binds_configured_predictor_kind():
    profile = SharingProfile(
        name="bind", num_cores=2, cores_per_cmp=1,
        accesses_per_core=10, seed=1,
    )
    machine = default_machine(
        algorithm="subset", cores_per_cmp=1, num_cmps=2
    )
    algorithm = build_algorithm("subset")
    RingMultiprocessor(machine, algorithm, SyntheticSource(profile))
    assert algorithm._predictor_kind == machine.predictor.kind
    assert algorithm.uses_predictor() == (machine.predictor.kind != "none")


# ----------------------------------------------------------------------
# Registry metadata


def test_registry_publishes_decision_metadata():
    meta = REGISTRY.metadata("algorithm", "criticality")
    assert meta["decision_inputs"] == ("prediction", "retries", "waiters")
    assert meta["dynamic_choose"] is False
    for name in REGISTRY.names("algorithm"):
        meta = REGISTRY.metadata("algorithm", name)
        assert "decision_inputs" in meta
        assert "dynamic_choose" in meta


# ----------------------------------------------------------------------
# CLI surface


def test_parse_algorithm_list_expands_all():
    expanded = _parse_algorithm_list("all")
    assert expanded == _all_algorithm_names()
    assert set(expanded) == set(REGISTRY.names("algorithm"))
    # Paper order leads; the post-paper additions follow.
    assert expanded[:7] == [
        "lazy", "eager", "oracle", "subset",
        "superset_con", "superset_agg", "exact",
    ]
    assert "criticality" in expanded


def test_parse_algorithm_list_accepts_comma_lists():
    assert _parse_algorithm_list("lazy, eager ,lazy") == ["lazy", "eager"]
    assert _parse_algorithm_list("") == []
    merged = _parse_algorithm_list("criticality,all")
    assert merged[0] == "criticality"
    assert set(merged) == set(_all_algorithm_names())


def test_refuse_unsupported_core_cites_decision_inputs():
    REGISTRY.register(
        "algorithm",
        "dyn_test_policy",
        SupersetHybrid,
        metadata={
            "decision_inputs": ("prediction", "energy_pressure"),
            "dynamic_choose": True,
        },
    )
    try:
        with pytest.raises(SoaUnsupportedError) as excinfo:
            _refuse_unsupported_core("jit", ["lazy", "dyn_test_policy"])
        message = str(excinfo.value)
        assert "core=jit does not support" in message
        assert "dyn_test_policy" in message
        assert "energy_pressure" in message
        assert "use core=object" in message
    finally:
        REGISTRY.unregister("algorithm", "dyn_test_policy")


def test_refuse_unsupported_core_passes_static_tables():
    # Every builtin publishes a static table, on any core name; unknown
    # names are left for the registry's uniform error downstream.
    _refuse_unsupported_core("jit", _all_algorithm_names())
    _refuse_unsupported_core("object", ["anything"])
    _refuse_unsupported_core("no_such_core", ["lazy"])
    _refuse_unsupported_core("jit", ["no_such_algorithm"])


def test_figure_parser_accepts_criticality_options():
    parser = build_parser()
    args = parser.parse_args(
        ["figure", "criticality", "--think-scale", "0.5", "--jobs", "1"]
    )
    assert args.number == "criticality"
    assert args.think_scale == 0.5
    args = parser.parse_args(["figure", "saturation", "--algorithms", "all"])
    assert _parse_algorithm_list(args.algorithms) == _all_algorithm_names()

"""Unit tests for the workload-source seam (repro.workloads.source)."""

from __future__ import annotations

import pytest

from repro.registry import REGISTRY, UnknownComponentError
from repro.workloads.io import save_trace
from repro.workloads.source import (
    FileReplaySource,
    SyntheticSource,
    TraceSource,
    WorkloadSource,
    as_source,
    descriptor_key,
    resolve_source,
)
from repro.workloads.synthetic import SharingProfile, generate_workload
from repro.workloads.trace import Access, WorkloadTrace


def small_profile(**overrides):
    params = dict(
        name="source-test",
        num_cores=4,
        cores_per_cmp=2,
        accesses_per_core=50,
        p_shared=0.5,
        shared_lines=16,
        private_lines=16,
        prewarm_fraction=0.5,
        seed=7,
    )
    params.update(overrides)
    return SharingProfile(**params)


# ----------------------------------------------------------------------
# Normalization


def test_as_source_passes_sources_through():
    source = SyntheticSource(small_profile())
    assert as_source(source) is source


def test_as_source_wraps_trace():
    trace = generate_workload(small_profile())
    source = as_source(trace)
    assert isinstance(source, TraceSource)
    assert source.materialize() is trace
    assert source.descriptor() is None


def test_as_source_wraps_profile():
    source = as_source(small_profile())
    assert isinstance(source, SyntheticSource)
    assert source.name == "source-test"


def test_as_source_rejects_other_types():
    with pytest.raises(TypeError):
        as_source(42)


# ----------------------------------------------------------------------
# Geometry and laziness


def test_synthetic_source_geometry_is_lazy():
    source = SyntheticSource(small_profile())
    assert source.num_cores == 4
    assert source.cores_per_cmp == 2
    assert source.num_cmps == 2
    assert source._trace is None  # geometry never generated anything


def test_synthetic_source_materializes_once():
    source = SyntheticSource(small_profile())
    assert source.materialize() is source.materialize()


def test_core_stream_matches_materialized():
    source = SyntheticSource(small_profile())
    trace = source.materialize()
    for core in range(source.num_cores):
        assert list(source.core_stream(core)) == trace.traces[core]


def test_total_and_prewarm_delegate():
    source = SyntheticSource(small_profile())
    trace = source.materialize()
    assert source.total_accesses() == trace.total_accesses
    assert source.prewarm() == trace.prewarm


# ----------------------------------------------------------------------
# Descriptors


def test_equal_profiles_share_descriptor():
    a = SyntheticSource(small_profile())
    b = SyntheticSource(small_profile())
    assert a.descriptor() == b.descriptor()
    assert descriptor_key(a.descriptor()) == descriptor_key(
        b.descriptor()
    )


def test_different_seed_changes_descriptor():
    a = SyntheticSource(small_profile())
    b = SyntheticSource(small_profile(seed=8))
    assert descriptor_key(a.descriptor()) != descriptor_key(
        b.descriptor()
    )


def test_descriptor_key_is_order_independent():
    assert descriptor_key({"a": 1, "b": 2}) == descriptor_key(
        {"b": 2, "a": 1}
    )


# ----------------------------------------------------------------------
# File replay


def test_file_replay_source_streams(tmp_path):
    trace = generate_workload(small_profile())
    path = tmp_path / "trace.jsonl"
    save_trace(trace, path, chunk_size=8)
    source = FileReplaySource(path)
    assert source.streaming
    assert source.name == trace.name
    assert source.num_cores == trace.num_cores
    assert source.total_accesses() == trace.total_accesses
    assert source.prewarm() == trace.prewarm
    for core in range(trace.num_cores):
        assert list(source.core_stream(core)) == trace.traces[core]


def test_file_replay_descriptor_tracks_content(tmp_path):
    trace = generate_workload(small_profile())
    path_a = tmp_path / "a.jsonl"
    path_b = tmp_path / "b.jsonl"
    save_trace(trace, path_a)
    save_trace(trace, path_b)
    # Two copies of the same bytes share an identity...
    assert (
        FileReplaySource(path_a).descriptor()
        == FileReplaySource(path_b).descriptor()
    )
    # ...and different content does not.
    other = generate_workload(small_profile(seed=9))
    save_trace(other, path_b)
    assert (
        FileReplaySource(path_a).descriptor()
        != FileReplaySource(path_b).descriptor()
    )


def test_file_replay_materialize_round_trips(tmp_path):
    trace = generate_workload(small_profile())
    path = tmp_path / "trace.jsonl"
    save_trace(trace, path)
    assert FileReplaySource(path).materialize().traces == trace.traces


# ----------------------------------------------------------------------
# resolve_source


def test_resolve_source_by_name():
    source = resolve_source("splash2", accesses_per_core=50, seed=3)
    assert isinstance(source, WorkloadSource)
    assert source.name == "SPLASH-2"


def test_resolve_source_registered_app():
    source = resolve_source("splash2/barnes", accesses_per_core=50)
    assert source.name == "splash2/barnes"


def test_resolve_source_unknown_name():
    with pytest.raises(UnknownComponentError):
        resolve_source("no-such-workload")


def test_resolve_source_file_scheme(tmp_path):
    trace = generate_workload(small_profile())
    path = tmp_path / "trace.jsonl"
    save_trace(trace, path)
    source = resolve_source("file:%s" % path)
    assert isinstance(source, FileReplaySource)
    assert source.total_accesses() == trace.total_accesses


def test_resolve_source_file_scheme_needs_path():
    with pytest.raises(ValueError):
        resolve_source("file:")


def test_resolve_source_passes_non_strings_through():
    trace = WorkloadTrace(
        name="t", cores_per_cmp=1, traces=[[Access(1, False, 0)]]
    )
    assert resolve_source(trace).materialize() is trace


def test_resolve_source_default_scale_omits_kwargs():
    """Scale/seed 0 means 'workload default': the registry factory is
    called without the kwargs, so factories with their own defaults
    (per-app seeds) keep them."""
    direct = resolve_source("splash2/barnes")
    scaled = resolve_source("splash2/barnes", accesses_per_core=123)
    assert direct.profile.accesses_per_core == 1500  # app default kept
    assert scaled.profile.accesses_per_core == 123
    assert scaled.total_accesses() < direct.materialize().total_accesses


def test_plugin_source_resolves_through_registry():
    class TinySource(WorkloadSource):
        @property
        def name(self):
            return "tiny"

        @property
        def num_cores(self):
            return 2

        @property
        def cores_per_cmp(self):
            return 1

        def materialize(self):
            return WorkloadTrace(
                name="tiny",
                cores_per_cmp=1,
                traces=[[Access(1, False, 0)], [Access(2, True, 0)]],
            )

    REGISTRY.register("workload", "tiny-test-source", TinySource)
    try:
        source = resolve_source("tiny-test-source")
        assert isinstance(source, TinySource)
        assert list(source.core_stream(1)) == [Access(2, True, 0)]
    finally:
        REGISTRY.unregister("workload", "tiny-test-source")

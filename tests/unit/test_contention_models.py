"""Deterministic unit tests for the contention models: link
reservation ordering, snoop-port queueing, physical-link descriptors,
the warmup reset, occupancy instrumentation, and the array-core
envelope of the contention knobs (end-to-end through the CLI)."""

from __future__ import annotations

import dataclasses
from types import SimpleNamespace

import pytest

from repro.config import (
    DataNetworkConfig,
    RingConfig,
    TopologyConfig,
    TraceConfig,
    default_machine,
)
from repro.core.algorithms import build_algorithm
from repro.ring.topology import HierRingTopology, RingTopology
from repro.sim.system import RingMultiprocessor
from repro.workloads.synthetic import SharingProfile, generate_workload


def make_system(
    topology=None,
    num_cmps=8,
    link_occupancy=10,
    serialize=False,
    sample_window=0,
):
    profile = SharingProfile(
        name="contention-unit",
        num_cores=num_cmps,
        cores_per_cmp=1,
        accesses_per_core=40,
        p_shared=0.5,
        shared_lines=64,
        private_lines=64,
        think_mean=5.0,
        seed=3,
    )
    machine = default_machine(
        algorithm="lazy",
        cores_per_cmp=1,
        num_cmps=num_cmps,
        ring=RingConfig(
            link_occupancy=link_occupancy,
            serialize_snoop_port=serialize,
        ),
        tracing=TraceConfig(sample_window=sample_window),
    )
    if topology:
        machine = machine.replace(
            topology=dataclasses.replace(
                machine.topology, kind=topology
            )
        )
    return RingMultiprocessor(
        machine, build_algorithm("lazy"), generate_workload(profile)
    )


def txn_on_ring(ring):
    """Minimal transaction stub: ``_cross_link`` reads only the
    address, and ``ring_of(address) == address % num_rings``."""
    return SimpleNamespace(address=ring)


# ----------------------------------------------------------------------
# Link reservation ordering


def test_link_reservations_are_fifo():
    walker = make_system().walker
    txn = txn_on_ring(0)
    assert walker._cross_link(txn, 2, 100) == 100
    # Same link, same embedded ring: queued behind the first booking.
    assert walker._cross_link(txn, 2, 100) == 110
    # An earlier requested departure still queues behind both
    # outstanding reservations (bookings are granted in call order).
    assert walker._cross_link(txn, 2, 105) == 120
    # A different segment is a different physical link.
    assert walker._cross_link(txn, 3, 100) == 100


def test_embedded_rings_are_independent_on_flat_ring():
    walker = make_system().walker
    assert walker._cross_link(txn_on_ring(0), 2, 100) == 100
    assert walker._cross_link(txn_on_ring(1), 2, 100) == 100


def test_zero_occupancy_reserves_nothing():
    walker = make_system(link_occupancy=0).walker
    assert walker._cross_link(txn_on_ring(0), 2, 100) == 100
    assert walker._link_free == {}
    assert walker.link_busy_cycles == 0


def test_link_busy_cycles_accumulate_per_physical_link():
    walker = make_system(link_occupancy=10).walker
    walker._cross_link(txn_on_ring(0), 2, 100)
    assert walker.link_busy_cycles == 10
    # A hier_ring block crossing books two physical links per pass.
    hier = make_system(topology="hier_ring", num_cmps=16).walker
    hier._cross_link(txn_on_ring(0), 3, 100)
    assert hier.link_busy_cycles == 20


# ----------------------------------------------------------------------
# Snoop-port queueing


def test_snoop_port_queueing_delay():
    walker = make_system(serialize=True).walker
    snoop_time = walker.config.ring.snoop_time
    assert walker._reserve_snoop_port(3, 100) == 0
    # Port busy until 100 + snoop_time: the next snoop waits it out.
    assert walker._reserve_snoop_port(3, 100) == snoop_time
    third = walker._reserve_snoop_port(3, 120)
    assert third == 100 + 2 * snoop_time - 120
    assert walker.port_wait_cycles == snoop_time + third
    # Ports are per CMP.
    assert walker._reserve_snoop_port(4, 100) == 0


def test_snoop_port_backlog_measures_pending_service():
    walker = make_system(serialize=True).walker
    snoop_time = walker.config.ring.snoop_time
    walker._reserve_snoop_port(3, 100)
    walker._reserve_snoop_port(3, 100)
    # At t=100 node 3 has two snoops booked (2 x snoop_time of
    # service) and seven idle ports.
    assert walker.snoop_port_backlog(100) == pytest.approx(2.0 / 8.0)
    assert walker.snoop_port_backlog(100 + 2 * snoop_time) == 0.0


def test_serialization_off_has_no_port_state():
    walker = make_system(serialize=False).walker
    assert walker._reserve_snoop_port(3, 100) == 0
    assert walker.snoop_port_backlog(100) == 0.0


# ----------------------------------------------------------------------
# Physical-link descriptors vs the topology's exported tables


def test_flat_ring_segment_links_one_per_node():
    topo = RingTopology(8, RingConfig(), DataNetworkConfig())
    succ, _, _ = topo.export_tables()
    assert topo.link_counts() == (8, 0)
    for node in range(8):
        assert topo.segment_links(node) == (("ring", node),)
        assert succ[node] == (node + 1) % 8


def test_hier_segment_links_match_export_tables():
    topo = HierRingTopology(
        16, RingConfig(), TopologyConfig(kind="hier_ring"),
        DataNetworkConfig(),
    )
    succ, _, _ = topo.export_tables()
    per_ring, shared = topo.link_counts()
    assert (per_ring, shared) == (16, topo.local_rings)
    seen_ring_ids = set()
    seen_shared_ids = set()
    for node in range(16):
        links = topo.segment_links(node)
        ring_ids = [lid for scope, lid in links if scope == "ring"]
        shared_ids = [lid for scope, lid in links if scope == "shared"]
        # Every outbound segment owns exactly one per-ring link...
        assert ring_ids == [node]
        seen_ring_ids.update(ring_ids)
        # ...and crosses the shared global ring exactly when the
        # successor leaves the block.
        crosses = succ[node] // topo.ring_size != node // topo.ring_size
        assert bool(shared_ids) == crosses
        if shared_ids:
            assert shared_ids == [topo.local_ring_of(node)]
            seen_shared_ids.update(shared_ids)
    assert len(seen_ring_ids) == per_ring
    assert seen_shared_ids == set(range(shared))


def test_shared_global_link_serializes_across_embedded_rings():
    """The regression this keying fixes: a block-crossing hop uses
    one physical bridge onto the global ring, shared by *every*
    embedded ring, so crossings from different embedded rings must
    serialize - the old ``(ring, node)`` key let them overlap."""
    walker = make_system(topology="hier_ring", num_cmps=16).walker
    # Node 3 is the last node of block 0 (ring_size 4): its segment
    # is local hand-off + shared global link.
    assert walker._cross_link(txn_on_ring(0), 3, 100) == 100
    assert walker._cross_link(txn_on_ring(1), 3, 100) == 110
    # Inside a block the embedded rings stay independent.
    assert walker._cross_link(txn_on_ring(0), 1, 100) == 100
    assert walker._cross_link(txn_on_ring(1), 1, 100) == 100


# ----------------------------------------------------------------------
# Warmup reset


def test_warmup_end_resets_contention_state():
    walker = make_system(serialize=True).walker
    walker._cross_link(txn_on_ring(0), 2, 100)
    walker._reserve_snoop_port(3, 100)
    assert walker._link_free and any(walker._snoop_port_free)
    walker.on_warmup_end(walker.stats, walker.energy)
    assert walker._link_free == {}
    assert set(walker._snoop_port_free) == {0}
    assert len(walker._snoop_port_free) == 8
    # The cumulative instrumentation counters survive (samplers
    # difference them; the reset must not tear their window).
    assert walker.link_busy_cycles == 10


# ----------------------------------------------------------------------
# Timeline occupancy channels


def test_timeline_occupancy_channels_under_contention():
    system = make_system(
        link_occupancy=30, serialize=True, sample_window=2000
    )
    system.run()
    samples = system.timeline.samples
    assert samples
    assert any(s.link_util > 0.0 for s in samples)
    assert all(s.link_util >= 0.0 and s.port_queue >= 0.0
               for s in samples)


def test_timeline_occupancy_channels_zero_without_contention():
    system = make_system(
        link_occupancy=0, serialize=False, sample_window=2000
    )
    system.run()
    samples = system.timeline.samples
    assert samples
    assert all(s.link_util == 0.0 and s.port_queue == 0.0
               for s in samples)


def test_render_samples_includes_occupancy_columns():
    system = make_system(
        link_occupancy=30, serialize=True, sample_window=2000
    )
    system.run()
    rendered = system.timeline.render()
    header = rendered.splitlines()[0]
    assert "linkutil" in header
    assert "portq" in header


# ----------------------------------------------------------------------
# Array-core envelope of the contention knobs (genuine end-to-end:
# the soa/jit cores refuse the configuration at construction and the
# CLI falls back to the object core)


@pytest.mark.parametrize("core", ["soa", "jit"])
def test_sweep_cli_falls_back_when_array_core_refuses(core, capsys):
    from repro.harness.cli import main

    rc = main([
        "sweep", "ring.link_occupancy", "--values", "30",
        "--scale", "60", "--jobs", "1", "--no-cache",
        "--core", core, "--metric", "exec_time",
    ])
    captured = capsys.readouterr()
    assert rc == 0
    assert "falling back to core=object" in captured.err
    assert "ring.link_occupancy" in captured.out


def test_sweep_cli_strict_core_fails_hard(capsys):
    from repro.harness.cli import main

    rc = main([
        "sweep", "ring.link_occupancy", "--values", "30",
        "--scale", "60", "--jobs", "1", "--no-cache",
        "--core", "soa", "--strict-core",
    ])
    captured = capsys.readouterr()
    assert rc == 2
    assert "flexsnoop:" in captured.err

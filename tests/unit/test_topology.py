"""Unit tests for ring and torus topologies."""

from __future__ import annotations

import pytest

from repro.config import DataNetworkConfig, RingConfig
from repro.ring.topology import RingTopology, TorusTopology


def ring(n=8, rings=2):
    return RingTopology(n, RingConfig(num_rings=rings))


def test_next_node_wraps():
    topology = ring(4)
    assert topology.next_node(0) == 1
    assert topology.next_node(3) == 0


def test_ring_distance():
    topology = ring(8)
    assert topology.ring_distance(0, 1) == 1
    assert topology.ring_distance(1, 0) == 7
    assert topology.ring_distance(5, 5) == 0
    assert topology.ring_distance(6, 2) == 4


def test_walk_order_visits_everyone_once():
    topology = ring(8)
    order = topology.walk_order(3)
    assert order == [4, 5, 6, 7, 0, 1, 2]
    assert len(set(order)) == 7
    assert 3 not in order


def test_ring_of_interleaves_addresses():
    topology = ring(8, rings=2)
    assert topology.ring_of(10) == 0
    assert topology.ring_of(11) == 1


def test_ring_requires_two_nodes():
    with pytest.raises(ValueError):
        RingTopology(1, RingConfig())


def test_ring_node_range_checked():
    topology = ring(4)
    with pytest.raises(ValueError):
        topology.next_node(4)
    with pytest.raises(ValueError):
        topology.ring_distance(0, -1)


def torus(n=8, shape=(4, 2)):
    return TorusTopology(n, DataNetworkConfig(torus_shape=shape))


def test_torus_coordinates():
    topology = torus()
    assert topology.coordinates(0) == (0, 0)
    assert topology.coordinates(1) == (0, 1)
    assert topology.coordinates(2) == (1, 0)
    assert topology.coordinates(7) == (3, 1)


def test_torus_hop_distance_wraps_around():
    topology = torus()
    assert topology.hop_distance(0, 0) == 0
    assert topology.hop_distance(0, 1) == 1
    # Rows 0 and 3 are adjacent through the wrap-around link.
    assert topology.hop_distance(0, 6) == 1
    assert topology.hop_distance(0, 7) == 2


def test_torus_distance_symmetric():
    topology = torus()
    for a in range(8):
        for b in range(8):
            assert topology.hop_distance(a, b) == topology.hop_distance(b, a)


def test_torus_transfer_latency():
    config = DataNetworkConfig(
        per_hop_latency=20, overhead=40, torus_shape=(4, 2)
    )
    topology = TorusTopology(8, config)
    assert topology.transfer_latency(0, 0) == 40
    assert topology.transfer_latency(0, 1) == 60
    assert topology.transfer_latency(0, 7) == 80


def test_torus_too_small_rejected():
    with pytest.raises(ValueError):
        TorusTopology(9, DataNetworkConfig(torus_shape=(4, 2)))


def test_torus_node_range_checked():
    topology = torus()
    with pytest.raises(ValueError):
        topology.coordinates(8)

"""Unit tests for the snoop-topology layer (ring, hier_ring, torus)."""

from __future__ import annotations

import pytest

from repro.config import (
    DataNetworkConfig,
    MachineConfig,
    RingConfig,
    TopologyConfig,
)
from repro.registry import REGISTRY, UnknownComponentError
from repro.ring.topology import (
    HierRingTopology,
    RingTopology,
    SnoopTopology,
    TopologyTablesUnavailable,
    TorusTopology,
    build_topology,
    ring_successors,
)


def ring(n=8, rings=2):
    return RingTopology(n, RingConfig(num_rings=rings))


def test_next_node_wraps():
    topology = ring(4)
    assert topology.next_node(0) == 1
    assert topology.next_node(3) == 0


def test_ring_distance():
    topology = ring(8)
    assert topology.ring_distance(0, 1) == 1
    assert topology.ring_distance(1, 0) == 7
    assert topology.ring_distance(5, 5) == 0
    assert topology.ring_distance(6, 2) == 4


def test_walk_order_visits_everyone_once():
    topology = ring(8)
    order = topology.walk_order(3)
    assert order == [4, 5, 6, 7, 0, 1, 2]
    assert len(set(order)) == 7
    assert 3 not in order


def test_ring_of_interleaves_addresses():
    topology = ring(8, rings=2)
    assert topology.ring_of(10) == 0
    assert topology.ring_of(11) == 1


def test_ring_requires_two_nodes():
    with pytest.raises(ValueError):
        RingTopology(1, RingConfig())


def test_ring_node_range_checked():
    topology = ring(4)
    with pytest.raises(ValueError):
        topology.next_node(4)
    with pytest.raises(ValueError):
        topology.ring_distance(0, -1)


def torus(n=8, shape=(4, 2)):
    return TorusTopology(n, DataNetworkConfig(torus_shape=shape))


def test_torus_coordinates():
    topology = torus()
    assert topology.coordinates(0) == (0, 0)
    assert topology.coordinates(1) == (0, 1)
    assert topology.coordinates(2) == (1, 0)
    assert topology.coordinates(7) == (3, 1)


def test_torus_hop_distance_wraps_around():
    topology = torus()
    assert topology.hop_distance(0, 0) == 0
    assert topology.hop_distance(0, 1) == 1
    # Rows 0 and 3 are adjacent through the wrap-around link.
    assert topology.hop_distance(0, 6) == 1
    assert topology.hop_distance(0, 7) == 2


def test_torus_distance_symmetric():
    topology = torus()
    for a in range(8):
        for b in range(8):
            assert topology.hop_distance(a, b) == topology.hop_distance(b, a)


def test_torus_transfer_latency():
    config = DataNetworkConfig(
        per_hop_latency=20, overhead=40, torus_shape=(4, 2)
    )
    topology = TorusTopology(8, config)
    assert topology.transfer_latency(0, 0) == 40
    assert topology.transfer_latency(0, 1) == 60
    assert topology.transfer_latency(0, 7) == 80


def test_torus_too_small_rejected():
    with pytest.raises(ValueError):
        TorusTopology(9, DataNetworkConfig(torus_shape=(4, 2)))


def test_torus_node_range_checked():
    topology = torus()
    with pytest.raises(ValueError):
        topology.coordinates(8)


# ----------------------------------------------------------------------
# SnoopTopology interface and table export


def test_ring_successors_is_the_canonical_cycle():
    assert ring_successors(4) == [1, 2, 3, 0]


def test_export_tables_ring():
    topology = ring(4)
    succ, out_lat, in_lat = topology.export_tables()
    assert succ == [1, 2, 3, 0]
    assert out_lat == [RingConfig().hop_latency] * 4
    assert in_lat == out_lat


def test_route_default_follows_successors():
    topology = ring(4)
    assert topology.route(2, ()) == 3
    assert topology.route(2, (3, 0)) == 1


def test_entry_latency_is_predecessor_outbound():
    topology = HierRingTopology(
        8,
        RingConfig(),
        TopologyConfig(kind="hier_ring", local_rings=2,
                       local_hop_latency=10, global_hop_latency=25),
        DataNetworkConfig(torus_shape=(4, 2)),
    )
    succ, out_lat, in_lat = topology.export_tables()
    for node in range(8):
        assert in_lat[succ[node]] == out_lat[node]


class _SkipTwoTopology(SnoopTopology):
    """Path-dependent routing: hops by 2, so successors() is not one
    Hamiltonian cycle on even node counts."""

    kind = "skip2"

    def next_node(self, node):
        self._check(node)
        return (node + 2) % self.num_nodes

    def segment_latency(self, node):
        return 5

    def transfer_latency(self, src, dst):
        return 40


class _DynamicTopology(SnoopTopology):
    """No static successor table: routing depends on the path, so the
    topology declines ``successors()`` (the dynamic-topology contract)
    and only the object core's per-hop walker can drive it."""

    kind = "dynamic"

    def route(self, requester, path_so_far):
        # Visit odd nodes first, then even ones - genuinely
        # path-dependent, not expressible as one successor table.
        remaining = [
            node
            for node in range(self.num_nodes)
            if node != requester and node not in path_so_far
        ]
        odd = [node for node in remaining if node % 2]
        if odd:
            return odd[0]
        if remaining:
            return remaining[0]
        return requester

    def successors(self):
        raise NotImplementedError("routing is path-dependent")

    def segment_latency(self, node):
        return 5

    def transfer_latency(self, src, dst):
        return 40


def test_export_tables_rejects_non_hamiltonian_cycle():
    with pytest.raises(ValueError):
        _SkipTwoTopology(8).export_tables()


def test_export_tables_unavailable_for_dynamic_topologies():
    with pytest.raises(TopologyTablesUnavailable):
        _DynamicTopology(8).export_tables()


# ----------------------------------------------------------------------
# HierRingTopology


def hier(num_nodes=16, local_rings=4, local_hop=10, global_hop=25):
    return HierRingTopology(
        num_nodes,
        RingConfig(),
        TopologyConfig(kind="hier_ring", local_rings=local_rings,
                       local_hop_latency=local_hop,
                       global_hop_latency=global_hop),
        DataNetworkConfig(torus_shape=(4, 4)),
    )


def test_hier_structure():
    topology = hier()
    assert topology.ring_size == 4
    assert topology.bridges() == [0, 4, 8, 12]
    assert topology.local_ring_of(6) == 1
    assert topology.bridge_of(6) == 4
    assert topology.is_bridge(8)
    assert not topology.is_bridge(9)


def test_hier_segment_latency_charges_global_on_block_crossing():
    topology = hier()
    # Inside a block: local hop only.
    assert topology.segment_latency(0) == 10
    assert topology.segment_latency(2) == 10
    # Last node of each block hands off across the global ring.
    assert topology.segment_latency(3) == 35
    assert topology.segment_latency(15) == 35


def test_hier_zero_latency_inherits_ring_hop():
    topology = hier(local_hop=0, global_hop=0)
    hop = RingConfig().hop_latency
    assert topology.segment_latency(1) == hop
    assert topology.segment_latency(3) == 2 * hop


def test_hier_transfer_latency_uses_bridge_paths():
    config = DataNetworkConfig(
        per_hop_latency=20, overhead=40, torus_shape=(4, 4)
    )
    topology = HierRingTopology(
        16, RingConfig(),
        TopologyConfig(kind="hier_ring", local_rings=4),
        config,
    )
    assert topology.transfer_latency(1, 1) == 40
    # Same local ring: one hop around the bidirectional ring.
    assert topology.transfer_latency(1, 2) == 60
    # 1 -> bridge 0 (1 hop), global 0 -> 1 (1 hop), bridge 4 -> 6
    # (2 hops): 4 hops total.
    assert topology.transfer_latency(1, 6) == 4 * 20 + 40


def test_hier_validation():
    with pytest.raises(ValueError):
        hier(num_nodes=9, local_rings=4)  # not divisible
    with pytest.raises(ValueError):
        hier(num_nodes=4, local_rings=1)  # needs >= 2 local rings
    with pytest.raises(ValueError):
        hier(num_nodes=4, local_rings=4)  # local rings of 1


# ----------------------------------------------------------------------
# Registry resolution and build_topology


def test_topology_registry_builtins_and_aliases():
    names = REGISTRY.names("topology")
    assert "ring" in names and "hier_ring" in names
    assert REGISTRY.canonical("topology", "flat") == "ring"
    assert REGISTRY.canonical("topology", "hierarchical") == "hier_ring"
    assert REGISTRY.canonical("topology", "hier") == "hier_ring"
    with pytest.raises(UnknownComponentError):
        REGISTRY.canonical("topology", "moebius")


def test_build_topology_from_machine_config():
    machine = MachineConfig()
    topology = build_topology(machine)
    assert isinstance(topology, RingTopology)
    assert topology.num_nodes == 8
    assert topology.transfer_latency(0, 1) == (
        machine.data_network.per_hop_latency
        + machine.data_network.overhead
    )

    hier_machine = MachineConfig(
        num_cmps=16,
        cores_per_cmp=1,
        topology=TopologyConfig(kind="hier_ring"),
    )
    built = build_topology(hier_machine)
    assert isinstance(built, HierRingTopology)
    assert built.local_rings == 4
    assert built.num_nodes == 16


# ----------------------------------------------------------------------
# Dynamic topologies: object-core walker routes per hop; the fused
# cores refuse through the SoaUnsupportedError envelope.


def test_dynamic_topology_object_core_runs_fused_cores_refuse():
    from repro.harness.experiments import run_experiment
    from repro.sim.jit import JitUnsupportedError
    from repro.sim.soa import SoaUnsupportedError

    REGISTRY.register(
        "topology",
        "oddfirst",
        lambda config: _DynamicTopology(config.num_cmps),
    )
    try:
        result = run_experiment(
            "lazy",
            "specjbb",
            accesses_per_core=60,
            topology="oddfirst",
        )
        # The walk completed: every read transaction crossed all 8
        # nodes of the path-dependent cycle and came home.
        assert result.exec_time > 0
        assert result.stats.read_ring_transactions > 0
        with pytest.raises(SoaUnsupportedError):
            run_experiment(
                "lazy",
                "specjbb",
                accesses_per_core=60,
                topology="oddfirst",
                core="soa",
            )
        with pytest.raises(JitUnsupportedError):
            run_experiment(
                "lazy",
                "specjbb",
                accesses_per_core=60,
                topology="oddfirst",
                core="jit",
            )
    finally:
        REGISTRY.unregister("topology", "oddfirst")

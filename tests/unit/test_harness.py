"""Unit tests for the experiment harness and the CLI."""

from __future__ import annotations

import pytest

from repro.harness.cli import build_parser, main
from repro.harness.experiments import (
    ExperimentMatrix,
    MAIN_ALGORITHMS,
    WORKLOADS,
    format_accuracy_table,
    format_by_workload,
    run_experiment,
)

TINY = 150


def test_run_experiment_returns_result():
    result = run_experiment("lazy", "specjbb", accesses_per_core=TINY)
    assert result.algorithm == "lazy"
    assert result.workload == "SPECjbb"
    assert result.exec_time > 0
    assert result.stats.reads > 0


def test_run_experiment_predictor_override():
    result = run_experiment(
        "subset", "specjbb", predictor="Sub512", accesses_per_core=TINY
    )
    assert result.config.predictor.entries == 512


def test_matrix_caches_runs():
    matrix = ExperimentMatrix(accesses_per_core=TINY)
    first = matrix.result("lazy", "specjbb")
    second = matrix.result("lazy", "specjbb")
    assert first is second


def test_matrix_constants():
    assert "lazy" in MAIN_ALGORITHMS and "exact" in MAIN_ALGORITHMS
    assert WORKLOADS == ("splash2", "specjbb", "specweb")


def test_fig_extractors_tiny():
    matrix = ExperimentMatrix(
        accesses_per_core=TINY,
        algorithms=("lazy", "eager"),
        workloads=("specjbb",),
    )
    fig6 = matrix.fig6_snoops_per_request()
    assert set(fig6) == {"specjbb"}
    assert fig6["specjbb"]["eager"] == pytest.approx(7.0, abs=0.2)
    fig7 = matrix.fig7_read_messages()
    assert fig7["specjbb"]["lazy"] == 1.0
    fig8 = matrix.fig8_execution_time()
    assert fig8["specjbb"]["lazy"] == 1.0
    fig9 = matrix.fig9_energy()
    assert fig9["specjbb"]["eager"] > 1.2


def test_format_by_workload():
    table = {"specjbb": {"lazy": 1.0, "eager": 1.88}}
    text = format_by_workload("Title", table)
    assert "Title" in text
    assert "lazy" in text and "eager" in text
    assert "specjbb" in text


def test_format_accuracy_table():
    table = {
        "Sub2k": {
            "specjbb": {
                "true_positive": 0.1,
                "true_negative": 0.8,
                "false_positive": 0.0,
                "false_negative": 0.1,
            }
        }
    }
    text = format_accuracy_table(table)
    assert "Sub2k" in text
    assert "0.800" in text


# ----------------------------------------------------------------------
# CLI


def test_cli_parser_commands():
    parser = build_parser()
    args = parser.parse_args(
        ["run", "--algorithm", "lazy", "--workload", "specjbb"]
    )
    assert args.algorithm == "lazy"
    args = parser.parse_args(["figure", "6"])
    assert args.number == "6"  # resolved to int (or "topology") later
    args = parser.parse_args(["figure", "topology"])
    assert args.number == "topology"
    args = parser.parse_args(["table", "1", "--nodes", "12"])
    assert args.nodes == 12


def test_cli_run_command(capsys):
    code = main(
        [
            "run",
            "--algorithm",
            "lazy",
            "--workload",
            "specjbb",
            "--scale",
            str(TINY),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "exec time" in out
    assert "energy" in out


def test_cli_table_command(capsys):
    assert main(["table", "1"]) == 0
    out = capsys.readouterr().out
    assert "lazy" in out and "oracle" in out
    assert main(["table", "3"]) == 0


def test_cli_table_unknown(capsys):
    assert main(["table", "2"]) == 2


def test_cli_figure_unknown(capsys):
    assert main(["figure", "99", "--scale", str(TINY)]) == 2

"""Unit tests for the persistent result cache."""

from __future__ import annotations

import pickle

import pytest

from repro.harness import result_cache as rc_module
from repro.harness.parallel import RunSpec, run_specs
from repro.harness.result_cache import (
    CACHE_DIR_ENV,
    ResultCache,
    default_cache_root,
    fingerprint_key,
)

TINY = 100

SPEC = RunSpec(
    "lazy", "specjbb", accesses_per_core=TINY, warmup_fraction=0.35
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=tmp_path / "cache")


def test_default_root_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
    assert default_cache_root() == tmp_path / "elsewhere"
    monkeypatch.delenv(CACHE_DIR_ENV)
    assert default_cache_root().name == "flexsnoop"


def test_miss_then_hit_roundtrip(cache):
    key = SPEC.cache_key()
    assert cache.get(key) is None
    assert (cache.hits, cache.misses) == (0, 1)

    result = run_specs([SPEC], jobs=1)[0]
    cache.put(key, result)
    assert cache.stores == 1

    cached = cache.get(key)
    assert cached is not None
    assert cache.hits == 1
    assert cached.stats == result.stats
    assert cached.exec_time == result.exec_time
    assert cached.energy == result.energy
    assert cached.config == result.config


def test_key_distinguishes_every_spec_dimension():
    base = SPEC.cache_key()
    variants = [
        RunSpec("eager", "specjbb", accesses_per_core=TINY,
                warmup_fraction=0.35),
        RunSpec("lazy", "specweb", accesses_per_core=TINY,
                warmup_fraction=0.35),
        RunSpec("subset", "specjbb", predictor="Sub512",
                accesses_per_core=TINY, warmup_fraction=0.35),
        RunSpec("lazy", "specjbb", accesses_per_core=TINY + 1,
                warmup_fraction=0.35),
        RunSpec("lazy", "specjbb", accesses_per_core=TINY, seed=9,
                warmup_fraction=0.35),
        RunSpec("lazy", "specjbb", accesses_per_core=TINY,
                warmup_fraction=0.2),
    ]
    keys = {base} | {variant.cache_key() for variant in variants}
    assert len(keys) == len(variants) + 1


def test_key_distinguishes_machine_config():
    from repro.config import default_machine

    profile_cores = 1  # specjbb is 1 core per CMP
    tweaked = default_machine(
        algorithm="lazy", cores_per_cmp=profile_cores
    ).replace(squash_backoff=999)
    spec = RunSpec(
        "lazy",
        "specjbb",
        accesses_per_core=TINY,
        warmup_fraction=0.35,
        config=tweaked,
    )
    assert spec.cache_key() != SPEC.cache_key()


def test_key_includes_code_version(monkeypatch):
    before = SPEC.cache_key()
    monkeypatch.setattr(
        rc_module,
        "CACHE_SCHEMA_VERSION",
        rc_module.CACHE_SCHEMA_VERSION + 1,
    )
    assert SPEC.cache_key() != before


def test_fingerprint_key_is_stable_across_dict_order():
    assert fingerprint_key({"a": 1, "b": 2}) == fingerprint_key(
        {"b": 2, "a": 1}
    )


@pytest.mark.parametrize(
    "garbage",
    [
        b"not a pickle",  # bad opcode -> UnpicklingError
        b"garbage\n",  # 'g' is the GET opcode -> ValueError
        b"",  # truncated -> EOFError
    ],
)
def test_corrupt_entry_is_a_miss_and_removed(cache, garbage):
    key = "deadbeef" * 8
    path = cache._path_for(key)
    path.parent.mkdir(parents=True)
    path.write_bytes(garbage)
    assert cache.get(key) is None
    assert not path.exists()
    assert cache.misses == 1


def test_wrong_type_entry_is_a_miss(cache):
    key = "cafebabe" * 8
    path = cache._path_for(key)
    path.parent.mkdir(parents=True)
    path.write_bytes(pickle.dumps({"not": "a result"}))
    assert cache.get(key) is None


def test_disabled_cache_never_stores(cache, tmp_path):
    disabled = ResultCache(root=tmp_path / "cache", enabled=False)
    result = run_specs([SPEC], jobs=1)[0]
    key = SPEC.cache_key()
    disabled.put(key, result)
    assert disabled.get(key) is None
    assert disabled.entry_count() == 0
    assert disabled.stores == 0


def test_clear_and_info(cache):
    result = run_specs([SPEC], jobs=1)[0]
    cache.put(SPEC.cache_key(), result)
    info = cache.info()
    assert info["entries"] == 1
    assert info["size_bytes"] > 0
    assert cache.clear() == 1
    assert cache.entry_count() == 0
    # Clearing an empty (or missing) cache is fine.
    assert cache.clear() == 0
    assert ResultCache(root=cache.root / "missing").clear() == 0


def test_orphaned_tmp_is_counted_and_pruned(cache):
    # Simulate a writer that died between writing its temp file and
    # the atomic replace: the temp exists, the final entry does not,
    # and no later put ever reuses the name (pids differ).
    key = "deadbeef" * 8
    path = cache._path_for(key)
    path.parent.mkdir(parents=True)
    torn = path.with_name(path.name + ".tmp.99999")
    torn.write_bytes(b"partial pickle bytes")

    info = cache.info()
    assert info["tmp_files"] == 1
    assert info["entries"] == 0  # a torn temp is not a live entry
    # A fresh temp (an in-flight writer's file) is left alone...
    assert cache.prune_tmp(max_age_seconds=3600) == 0
    assert torn.exists()
    # ...a stale orphan is reclaimed.
    assert cache.prune_tmp(max_age_seconds=0) == 1
    assert not torn.exists()
    assert cache.info()["tmp_files"] == 0


def test_clear_removes_tmp_and_empty_shard_dirs(cache):
    result = run_specs([SPEC], jobs=1)[0]
    key = SPEC.cache_key()
    cache.put(key, result)
    shard = cache._path_for(key).parent
    torn = cache._path_for(key).with_name("x.pkl.tmp.123")
    torn.write_bytes(b"torn")

    assert cache.clear() == 1
    assert not torn.exists()
    assert not shard.exists()
    assert not cache._bucket_root.exists()


def test_accounting_ignores_stale_schema_entries(cache):
    result = run_specs([SPEC], jobs=1)[0]
    cache.put(SPEC.cache_key(), result)
    # An entry written under an older cache schema: never served, so
    # it must not be counted as live - but clear() still removes it.
    stale = cache.root / "v1" / "ab" / ("ab" + "0" * 62 + ".pkl")
    stale.parent.mkdir(parents=True)
    stale.write_bytes(b"old entry")

    info = cache.info()
    assert info["entries"] == 1
    assert info["stale_entries"] == 1
    assert cache.clear() == 2
    assert not stale.exists()
    assert cache.root.is_dir()  # the root itself survives


def test_run_specs_populates_and_reuses_cache(cache):
    first = run_specs([SPEC], jobs=1, cache=cache)
    assert (cache.misses, cache.stores) == (1, 1)
    second = run_specs([SPEC], jobs=1, cache=cache)
    assert cache.hits == 1
    assert cache.stores == 1  # nothing re-simulated, nothing re-stored
    assert second[0].stats == first[0].stats
    assert second[0].exec_time == first[0].exec_time


def test_run_specs_deduplicates_identical_specs(cache):
    results = run_specs([SPEC, SPEC, SPEC], jobs=1, cache=cache)
    assert len(results) == 3
    assert cache.stores == 1
    assert results[0].stats == results[1].stats == results[2].stats


# ----------------------------------------------------------------------
# Size-bounded pruning (LRU by mtime)


def _fake_entry(cache, tag, size=1000, mtime=None):
    import os

    key = (tag * 64)[:64]
    path = cache._path_for(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"x" * size)
    if mtime is not None:
        os.utime(path, (mtime, mtime))
    return path


def test_prune_evicts_oldest_first(cache):
    old = _fake_entry(cache, "a", size=1000, mtime=1_000_000)
    mid = _fake_entry(cache, "b", size=1000, mtime=2_000_000)
    new = _fake_entry(cache, "c", size=1000, mtime=3_000_000)
    stats = cache.prune(max_size_bytes=2000)
    assert stats["removed"] == 1
    assert stats["freed_bytes"] == 1000
    assert stats["size_bytes"] == 2000
    assert not old.exists()
    assert mid.exists() and new.exists()


def test_prune_to_zero_empties_cache(cache):
    _fake_entry(cache, "a")
    _fake_entry(cache, "b")
    stats = cache.prune(max_size_bytes=0)
    assert stats["removed"] == 2
    assert cache.entry_count() == 0
    assert not cache._bucket_root.exists()  # emptied dirs removed


def test_prune_under_budget_is_a_noop(cache):
    path = _fake_entry(cache, "a", size=100)
    stats = cache.prune(max_size_bytes=10_000)
    assert stats == {"removed": 0, "freed_bytes": 0, "size_bytes": 100}
    assert path.exists()


def test_prune_ignores_stale_schema_entries(cache):
    live = _fake_entry(cache, "a", size=1000, mtime=1_000_000)
    stale = cache.root / "v1" / "ab" / ("ab" + "0" * 62 + ".pkl")
    stale.parent.mkdir(parents=True)
    stale.write_bytes(b"x" * 50_000)
    stats = cache.prune(max_size_bytes=2000)
    # The giant stale entry neither counts toward the budget nor gets
    # evicted; the live entry already fits.
    assert stats["removed"] == 0
    assert live.exists() and stale.exists()


def test_prune_rejects_negative_budget(cache):
    with pytest.raises(ValueError):
        cache.prune(max_size_bytes=-1)


def test_get_refreshes_mtime_for_lru(cache):
    import os

    result = run_specs([SPEC], jobs=1)[0]
    key = SPEC.cache_key()
    cache.put(key, result)
    path = cache._path_for(key)
    os.utime(path, (1_000_000, 1_000_000))
    assert cache.get(key) is not None
    assert path.stat().st_mtime > 1_000_000


def test_recently_served_entry_survives_prune(cache):
    import os

    result = run_specs([SPEC], jobs=1)[0]
    key = SPEC.cache_key()
    cache.put(key, result)
    served = cache._path_for(key)
    os.utime(served, (1_000_000, 1_000_000))
    untouched = _fake_entry(
        cache, "f", size=served.stat().st_size, mtime=2_000_000
    )
    cache.get(key)  # serving refreshes the mtime past the fake entry
    stats = cache.prune(max_size_bytes=served.stat().st_size)
    assert stats["removed"] == 1
    assert served.exists()
    assert not untouched.exists()

"""Unit tests for external-trace conversion (gem5/ChampSim dialects)."""

from __future__ import annotations

import pytest

from repro.workloads.convert import (
    convert_trace,
    external_trace_source,
    iter_external_accesses,
    load_external_trace,
)
from repro.workloads.io import TraceFormatError, load_trace
from repro.workloads.source import resolve_source
from repro.workloads.trace import Access

GEM5_LINES = """\
# tick,cpu,kind,addr
1000,0,r,0x1000
2000,0,w,0x1040
5000,1,read,4096
9000,0,r,0x1080
"""

CHAMPSIM_LINES = """\
# cpu instr kind addr
0 10 load 0x2000
0 25 store 0x2040
1 5 r 8192
"""


def test_gem5_parsing(tmp_path):
    path = tmp_path / "mem.trace"
    path.write_text(GEM5_LINES)
    pairs = list(iter_external_accesses(path, "gem5"))
    assert pairs == [
        # 0x1000 // 64 = 64; first access per cpu thinks 0.
        (0, Access(64, False, 0)),
        # (2000 - 1000) // 1000 ticks -> 1 cycle
        (0, Access(65, True, 1)),
        (1, Access(64, False, 0)),
        (0, Access(66, False, 7)),
    ]


def test_champsim_parsing(tmp_path):
    path = tmp_path / "mem.trace"
    path.write_text(CHAMPSIM_LINES)
    pairs = list(iter_external_accesses(path, "champsim"))
    assert pairs == [
        (0, Access(128, False, 0)),
        (0, Access(129, True, 15)),  # instruction gap, divisor 1
        (1, Access(128, False, 0)),
    ]


def test_unknown_format_rejected(tmp_path):
    path = tmp_path / "mem.trace"
    path.write_text(GEM5_LINES)
    with pytest.raises(ValueError, match="unknown external"):
        list(iter_external_accesses(path, "vhs"))


def test_malformed_line_positions_error(tmp_path):
    path = tmp_path / "mem.trace"
    path.write_text("1000,0,r,0x1000\nnot,a,valid\n")
    with pytest.raises(TraceFormatError, match=r"mem\.trace:2"):
        list(iter_external_accesses(path, "gem5"))


def test_bad_kind_positions_error(tmp_path):
    path = tmp_path / "mem.trace"
    path.write_text("1000,0,x,0x1000\n")
    with pytest.raises(TraceFormatError, match=r"mem\.trace:1"):
        list(iter_external_accesses(path, "gem5"))


def test_load_external_trace_pads_to_cmps(tmp_path):
    path = tmp_path / "mem.trace"
    path.write_text(GEM5_LINES)
    trace = load_external_trace(path, "gem5", cores_per_cmp=4)
    assert trace.num_cores == 4  # 2 cpus padded to one whole CMP
    assert trace.cores_per_cmp == 4
    assert [len(t) for t in trace.traces] == [3, 1, 0, 0]


def test_convert_trace_round_trips(tmp_path):
    src = tmp_path / "mem.trace"
    dst = tmp_path / "mem.jsonl"
    src.write_text(GEM5_LINES)
    num_cores, total = convert_trace(
        src, dst, "gem5", cores_per_cmp=2, chunk_size=2
    )
    assert (num_cores, total) == (2, 4)
    loaded = load_trace(dst)
    direct = load_external_trace(src, "gem5", cores_per_cmp=2)
    assert loaded.traces == direct.traces
    assert loaded.name == direct.name


def test_converted_file_replays_like_direct(tmp_path):
    src = tmp_path / "mem.trace"
    dst = tmp_path / "mem.jsonl"
    src.write_text(CHAMPSIM_LINES)
    convert_trace(src, dst, "champsim", cores_per_cmp=2)
    replay = resolve_source("file:%s" % dst)
    direct = resolve_source("champsim:%s" % src)
    assert replay.total_accesses() == direct.total_accesses()
    for core in range(replay.num_cores):
        assert list(replay.core_stream(core)) == list(
            direct.core_stream(core)
        )


def test_empty_external_trace_rejected(tmp_path):
    src = tmp_path / "mem.trace"
    src.write_text("# nothing here\n")
    with pytest.raises(TraceFormatError, match="no accesses"):
        convert_trace(src, tmp_path / "out.jsonl", "gem5")


def test_external_source_descriptor_hashes_input(tmp_path):
    src = tmp_path / "mem.trace"
    src.write_text(GEM5_LINES)
    a = external_trace_source(src, "gem5").descriptor()
    b = external_trace_source(src, "gem5").descriptor()
    assert a == b
    src.write_text(GEM5_LINES + "12000,0,w,0x2000\n")
    c = external_trace_source(src, "gem5").descriptor()
    assert a != c


def test_negative_time_gap_clamps_to_zero(tmp_path):
    path = tmp_path / "mem.trace"
    path.write_text("5000,0,r,0x1000\n1000,0,r,0x1040\n")
    pairs = list(iter_external_accesses(path, "gem5"))
    assert pairs[1][1].think_time == 0

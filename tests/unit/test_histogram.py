"""Unit tests for the latency histogram."""

from __future__ import annotations

import random

import pytest

from repro.metrics.histogram import LatencyHistogram, merge


def test_empty_histogram():
    histogram = LatencyHistogram()
    assert histogram.total == 0
    assert histogram.mean == 0.0
    assert histogram.percentile(50) == 0
    assert histogram.render() == "(empty)"


def test_mean_and_count():
    histogram = LatencyHistogram()
    for value in (10, 20, 30):
        histogram.record(value)
    assert histogram.total == 3
    assert histogram.mean == pytest.approx(20.0)
    assert histogram.max_value == 30
    assert histogram.min_value == 10


def test_negative_rejected():
    with pytest.raises(ValueError):
        LatencyHistogram().record(-1)


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        LatencyHistogram(first=0)
    with pytest.raises(ValueError):
        LatencyHistogram(growth=1.0)
    with pytest.raises(ValueError):
        LatencyHistogram(buckets=0)


def test_percentile_bounds_value():
    histogram = LatencyHistogram(first=16, growth=1.5, buckets=32)
    values = [random.Random(5).randint(0, 5000) for _ in range(2000)]
    for value in values:
        histogram.record(value)
    values.sort()
    for p in (50, 90, 99):
        exact = values[int(len(values) * p / 100) - 1]
        estimate = histogram.percentile(p)
        # The log-bucket estimate is an upper bound within one growth
        # factor of the exact percentile.
        assert estimate >= exact * 0.95
        assert estimate <= max(exact * 1.6, exact + 16)


def test_percentile_validation():
    with pytest.raises(ValueError):
        LatencyHistogram().percentile(101)


def test_overflow_bucket():
    histogram = LatencyHistogram(first=4, growth=2.0, buckets=3)
    # Edges: 4, 8, 16; 100 overflows.
    histogram.record(100)
    assert histogram.percentile(100) == 100
    labels = [label for label, _ in histogram.nonzero_buckets()]
    assert labels == [">16"]


def test_summary_keys():
    histogram = LatencyHistogram()
    histogram.record(50)
    summary = histogram.summary()
    assert set(summary) == {"count", "mean", "p50", "p90", "p99", "max"}


def test_render_has_bars():
    histogram = LatencyHistogram()
    for value in (10, 10, 10, 500):
        histogram.record(value)
    text = histogram.render(width=10)
    assert "#" in text
    assert len(text.splitlines()) == 2


def test_merge():
    a = LatencyHistogram()
    b = LatencyHistogram()
    for value in (10, 20):
        a.record(value)
    for value in (30, 40):
        b.record(value)
    merged = merge([a, b])
    assert merged.total == 4
    assert merged.mean == pytest.approx(25.0)
    assert merged.max_value == 40
    assert merged.min_value == 10


def test_slow_growth_edges_strictly_increase():
    histogram = LatencyHistogram(first=16, growth=1.001, buckets=32)
    assert histogram.edges == sorted(set(histogram.edges))
    # Every value lands in exactly one well-defined bucket.
    for value in (0, 16, 17, 40, 48, 49, 10_000):
        bucket = histogram._bucket_of(value)
        assert 0 <= bucket <= len(histogram.edges)
        histogram.record(value)
    assert histogram.total == 7


def test_merge_survives_slow_growth_geometry():
    # Before the geometry was copied, merge() re-derived growth as
    # edges[1]/edges[0], which the duplicate-collapsed integer edges
    # of a slow-growth histogram push to <= 1.0 - and the constructor
    # then rejected parameters it had itself produced.
    a = LatencyHistogram(first=16, growth=1.001, buckets=32)
    b = LatencyHistogram(first=16, growth=1.001, buckets=32)
    for value in (10, 20):
        a.record(value)
    for value in (30, 40):
        b.record(value)
    merged = merge([a, b])
    assert merged.edges == a.edges
    assert merged.total == 4
    assert merged.max_value == 40
    assert merged.min_value == 10
    # The merged histogram is a full LatencyHistogram: it records and
    # compares like one.
    merged.record(25)
    assert merged.total == 5
    assert merge([a]) != merged


def test_merge_rejects_mismatched_geometry():
    a = LatencyHistogram(first=16)
    b = LatencyHistogram(first=32)
    a.record(1)
    b.record(1)
    with pytest.raises(ValueError):
        merge([a, b])


def test_merge_empty_list_rejected():
    with pytest.raises(ValueError):
        merge([])


def test_system_populates_histogram():
    from repro.harness.experiments import run_experiment

    result = run_experiment("lazy", "specjbb", accesses_per_core=200)
    histogram = result.stats.read_miss_histogram
    assert histogram.total == result.stats.read_miss_count
    assert histogram.mean == pytest.approx(
        result.stats.mean_read_miss_latency
    )
    assert histogram.percentile(99) >= histogram.percentile(50)

"""Unit tests for the per-application SPLASH-2 profiles."""

from __future__ import annotations

import pytest

from repro.workloads.splash2_apps import (
    SPLASH2_APPS,
    build_app_workload,
    geometric_mean,
)


def test_eleven_applications():
    # The paper runs all SPLASH-2 applications except Volrend: 11.
    assert len(SPLASH2_APPS) == 11
    assert "volrend" not in SPLASH2_APPS


def test_all_profiles_use_paper_configuration():
    for name, factory in SPLASH2_APPS.items():
        profile = factory()
        assert profile.num_cores == 32, name
        assert profile.cores_per_cmp == 4, name
        assert profile.name == "splash2/%s" % name


def test_profiles_are_distinct():
    knob_sets = set()
    for factory in SPLASH2_APPS.values():
        profile = factory()
        knob_sets.add(
            (
                profile.p_shared,
                profile.migratory_fraction,
                profile.producer_consumer_fraction,
                profile.write_fraction_shared,
                profile.zipf_exponent,
            )
        )
    assert len(knob_sets) == len(SPLASH2_APPS)


def test_characterizations_hold():
    # Raytrace is read-mostly; radix is write-heavy.
    assert (
        SPLASH2_APPS["raytrace"]().write_fraction_shared
        < SPLASH2_APPS["radix"]().write_fraction_shared
    )
    # Water-nsquared is the migratory archetype; fft has none.
    assert SPLASH2_APPS["water-nsquared"]().migratory_fraction > 0.2
    assert SPLASH2_APPS["fft"]().migratory_fraction == 0.0
    # FFT and radix are producer-consumer transposes.
    assert SPLASH2_APPS["fft"]().producer_consumer_fraction >= 0.3
    # Ocean has the big, DRAM-bound working set.
    assert SPLASH2_APPS["ocean"]().p_cold >= 0.1


def test_build_app_workload():
    workload = build_app_workload("lu", accesses_per_core=50)
    assert workload.num_cores == 32
    assert workload.name == "splash2/lu"
    assert workload.total_accesses >= 32 * 50


def test_build_unknown_app_rejected():
    with pytest.raises(ValueError):
        build_app_workload("volrend")


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([1.0, 1.0, 1.0]) == 1.0
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


@pytest.mark.parametrize("app", ["barnes", "fft", "radix"])
def test_app_simulates(app):
    from repro.config import default_machine
    from repro.core.algorithms import build_algorithm
    from repro.sim.system import RingMultiprocessor

    workload = build_app_workload(app, accesses_per_core=60)
    machine = default_machine(algorithm="lazy", cores_per_cmp=4)
    result = RingMultiprocessor(
        machine, build_algorithm("lazy"), workload
    ).run()
    assert result.stats.reads > 0
    assert result.exec_time > 0

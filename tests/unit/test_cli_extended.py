"""Tests for the report, trace and cache CLI subcommands, and the
parallel/caching options of the matrix commands."""

from __future__ import annotations

import pytest

from repro.harness.cli import build_parser, main
from repro.harness.result_cache import CACHE_DIR_ENV, ResultCache
from repro.workloads.io import load_trace


def test_cli_trace_writes_file(tmp_path):
    out = tmp_path / "jbb.jsonl"
    code = main(
        [
            "trace",
            "workload",
            "--workload",
            "specjbb",
            "--scale",
            "100",
            "--out",
            str(out),
        ]
    )
    assert code == 0
    workload = load_trace(out)
    assert workload.name == "SPECjbb"
    assert workload.num_cores == 8


def test_cli_trace_record_show_audit_roundtrip(tmp_path, capsys):
    out = tmp_path / "run.jsonl"
    code = main(
        [
            "trace",
            "record",
            "--algorithm",
            "subset",
            "--workload",
            "specjbb",
            "--scale",
            "100",
            "--out",
            str(out),
            "--audit",
            "--sample-window",
            "5000",
        ]
    )
    assert code == 0
    recorded = capsys.readouterr().out
    assert "audit: ok" in recorded
    assert "timeline:" in recorded
    assert out.exists()

    code = main(["trace", "show", str(out), "--limit", "1"])
    assert code == 0
    shown = capsys.readouterr().out
    assert "issue" in shown
    assert "retire" in shown
    assert "elided" in shown

    code = main(["trace", "show", str(out), "--txn", "999999"])
    assert code == 0
    assert "no events match" in capsys.readouterr().out

    code = main(["trace", "audit", str(out)])
    assert code == 0
    assert "audit: ok" in capsys.readouterr().out


def test_cli_trace_audit_flags_corrupted_trace(tmp_path, capsys):
    out = tmp_path / "run.jsonl"
    assert (
        main(
            [
                "trace",
                "record",
                "--algorithm",
                "lazy",
                "--workload",
                "specjbb",
                "--scale",
                "100",
                "--out",
                str(out),
            ]
        )
        == 0
    )
    capsys.readouterr()
    # Drop every retirement: every transaction now violates the
    # issue-retires-exactly-once rule.
    lines = [
        line
        for line in out.read_text().splitlines()
        if '"ev": "retire"' not in line
    ]
    out.write_text("\n".join(lines) + "\n")
    assert main(["trace", "audit", str(out)]) == 1
    assert "violation" in capsys.readouterr().err


def test_cli_report_to_file(tmp_path, capsys):
    out_file = tmp_path / "report.md"
    code = main(
        [
            "report",
            "--scale",
            "100",
            "--figures",
            "6,7",
            "--out",
            str(out_file),
        ]
    )
    assert code == 0
    text = out_file.read_text()
    assert "Figure 6" in text and "Figure 7" in text
    assert "Figure 8" not in text
    assert "Headline" in text


# ----------------------------------------------------------------------
# Parallel / cache options


def test_cli_matrix_options_parse():
    parser = build_parser()
    args = parser.parse_args(["figure", "6", "--jobs", "4", "--no-cache"])
    assert args.jobs == 4 and args.no_cache is True
    args = parser.parse_args(["figure", "6"])
    assert args.jobs == 0 and args.no_cache is False
    args = parser.parse_args(["report", "--jobs", "2"])
    assert args.jobs == 2
    args = parser.parse_args(["cache", "clear"])
    assert args.action == "clear"


def test_cli_figure_cache_lifecycle(tmp_path, monkeypatch, capsys):
    """One flow through the cached CLI: cold run populates the cache,
    warm run reproduces the output from it, ``cache info``/``clear``
    manage it, ``--no-cache`` bypasses it."""
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cli-cache"))
    args = ["figure", "6", "--scale", "50", "--jobs", "1"]

    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "Figure 6" in cold
    entries = ResultCache().entry_count()
    assert entries > 0  # the run populated the persistent cache

    # Warm invocation: served entirely from the cache, same output.
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert warm == cold
    assert ResultCache().entry_count() == entries

    assert main(["cache", "info"]) == 0
    out = capsys.readouterr().out
    assert "entries" in out and str(tmp_path / "cli-cache") in out

    assert main(["cache", "clear"]) == 0
    out = capsys.readouterr().out
    assert "removed %d" % entries in out
    assert ResultCache().entry_count() == 0

    # --no-cache leaves the (now empty) cache untouched.
    assert main(args + ["--no-cache"]) == 0
    assert capsys.readouterr().out == cold
    assert ResultCache().entry_count() == 0


# ----------------------------------------------------------------------
# Failure paths: unknown component names exit 2 with the registry's
# uniform error on stderr (same message as the library paths).


@pytest.mark.parametrize(
    "argv, kind, known_sample",
    [
        (
            ["run", "--algorithm", "nonexistent", "--scale", "10"],
            "algorithm",
            "lazy",
        ),
        (
            ["run", "--workload", "nonexistent", "--scale", "10"],
            "workload",
            "splash2",
        ),
        (
            ["run", "--predictor", "Sub4k", "--scale", "10"],
            "predictor",
            "Sub2k",
        ),
        (
            [
                "trace",
                "workload",
                "--workload",
                "nonexistent",
                "--out",
                "/dev/null",
            ],
            "workload",
            "specjbb",
        ),
    ],
)
def test_cli_unknown_component_exits_2(argv, kind, known_sample, capsys):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert "unknown %s" % kind in err
    assert "known:" in err and known_sample in err


def test_cli_bench_check_missing_snapshot_skips(tmp_path, capsys):
    code = main(
        [
            "bench",
            "--scale", "20",
            "--trials", "1",
            "--check", str(tmp_path / "absent.json"),
        ]
    )
    assert code == 0
    assert "skipping regression check" in capsys.readouterr().out


def test_cli_bench_check_corrupt_snapshot_fails(tmp_path, capsys):
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{not json")
    code = main(
        [
            "bench",
            "--scale", "20",
            "--trials", "1",
            "--check", str(corrupt),
        ]
    )
    assert code == 1
    assert "corrupt baseline snapshot" in capsys.readouterr().err

    # Valid JSON with the wrong shape is also a corrupt baseline.
    corrupt.write_text('{"pr": 99}')
    code = main(
        [
            "bench",
            "--scale", "20",
            "--trials", "1",
            "--check", str(corrupt),
        ]
    )
    assert code == 1
    assert "corrupt baseline snapshot" in capsys.readouterr().err


def test_cli_cache_clear_empty_store(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "empty-cache"))
    assert main(["cache", "clear"]) == 0
    out = capsys.readouterr().out
    assert "removed 0" in out
    assert ResultCache().entry_count() == 0

"""Tests for the report and trace CLI subcommands."""

from __future__ import annotations

import pytest

from repro.harness.cli import main
from repro.workloads.io import load_trace


def test_cli_trace_writes_file(tmp_path):
    out = tmp_path / "jbb.jsonl"
    code = main(
        [
            "trace",
            "--workload",
            "specjbb",
            "--scale",
            "100",
            "--out",
            str(out),
        ]
    )
    assert code == 0
    workload = load_trace(out)
    assert workload.name == "SPECjbb"
    assert workload.num_cores == 8


def test_cli_report_to_file(tmp_path, capsys):
    out_file = tmp_path / "report.md"
    code = main(
        [
            "report",
            "--scale",
            "100",
            "--figures",
            "6,7",
            "--out",
            str(out_file),
        ]
    )
    assert code == 0
    text = out_file.read_text()
    assert "Figure 6" in text and "Figure 7" in text
    assert "Figure 8" not in text
    assert "Headline" in text

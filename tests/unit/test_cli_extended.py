"""Tests for the report, trace and cache CLI subcommands, and the
parallel/caching options of the matrix commands."""

from __future__ import annotations

import pytest

from repro.harness.cli import build_parser, main
from repro.harness.result_cache import CACHE_DIR_ENV, ResultCache
from repro.workloads.io import load_trace


def test_cli_trace_writes_file(tmp_path):
    out = tmp_path / "jbb.jsonl"
    code = main(
        [
            "trace",
            "workload",
            "--workload",
            "specjbb",
            "--scale",
            "100",
            "--out",
            str(out),
        ]
    )
    assert code == 0
    workload = load_trace(out)
    assert workload.name == "SPECjbb"
    assert workload.num_cores == 8


def test_cli_trace_record_show_audit_roundtrip(tmp_path, capsys):
    out = tmp_path / "run.jsonl"
    code = main(
        [
            "trace",
            "record",
            "--algorithm",
            "subset",
            "--workload",
            "specjbb",
            "--scale",
            "100",
            "--out",
            str(out),
            "--audit",
            "--sample-window",
            "5000",
        ]
    )
    assert code == 0
    recorded = capsys.readouterr().out
    assert "audit: ok" in recorded
    assert "timeline:" in recorded
    assert out.exists()

    code = main(["trace", "show", str(out), "--limit", "1"])
    assert code == 0
    shown = capsys.readouterr().out
    assert "issue" in shown
    assert "retire" in shown
    assert "elided" in shown

    code = main(["trace", "show", str(out), "--txn", "999999"])
    assert code == 0
    assert "no events match" in capsys.readouterr().out

    code = main(["trace", "audit", str(out)])
    assert code == 0
    assert "audit: ok" in capsys.readouterr().out


def test_cli_trace_audit_flags_corrupted_trace(tmp_path, capsys):
    out = tmp_path / "run.jsonl"
    assert (
        main(
            [
                "trace",
                "record",
                "--algorithm",
                "lazy",
                "--workload",
                "specjbb",
                "--scale",
                "100",
                "--out",
                str(out),
            ]
        )
        == 0
    )
    capsys.readouterr()
    # Drop every retirement: every transaction now violates the
    # issue-retires-exactly-once rule.
    lines = [
        line
        for line in out.read_text().splitlines()
        if '"ev": "retire"' not in line
    ]
    out.write_text("\n".join(lines) + "\n")
    assert main(["trace", "audit", str(out)]) == 1
    assert "violation" in capsys.readouterr().err


def test_cli_report_to_file(tmp_path, capsys):
    out_file = tmp_path / "report.md"
    code = main(
        [
            "report",
            "--scale",
            "100",
            "--figures",
            "6,7",
            "--out",
            str(out_file),
        ]
    )
    assert code == 0
    text = out_file.read_text()
    assert "Figure 6" in text and "Figure 7" in text
    assert "Figure 8" not in text
    assert "Headline" in text


# ----------------------------------------------------------------------
# Parallel / cache options


def test_cli_matrix_options_parse():
    parser = build_parser()
    args = parser.parse_args(["figure", "6", "--jobs", "4", "--no-cache"])
    assert args.jobs == 4 and args.no_cache is True
    args = parser.parse_args(["figure", "6"])
    assert args.jobs == 0 and args.no_cache is False
    args = parser.parse_args(["report", "--jobs", "2"])
    assert args.jobs == 2
    args = parser.parse_args(["cache", "clear"])
    assert args.action == "clear"


def test_cli_figure_cache_lifecycle(tmp_path, monkeypatch, capsys):
    """One flow through the cached CLI: cold run populates the cache,
    warm run reproduces the output from it, ``cache info``/``clear``
    manage it, ``--no-cache`` bypasses it."""
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cli-cache"))
    args = ["figure", "6", "--scale", "50", "--jobs", "1"]

    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "Figure 6" in cold
    entries = ResultCache().entry_count()
    assert entries > 0  # the run populated the persistent cache

    # Warm invocation: served entirely from the cache, same output.
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert warm == cold
    assert ResultCache().entry_count() == entries

    assert main(["cache", "info"]) == 0
    out = capsys.readouterr().out
    assert "entries" in out and str(tmp_path / "cli-cache") in out

    assert main(["cache", "clear"]) == 0
    out = capsys.readouterr().out
    assert "removed %d" % entries in out
    assert ResultCache().entry_count() == 0

    # --no-cache leaves the (now empty) cache untouched.
    assert main(args + ["--no-cache"]) == 0
    assert capsys.readouterr().out == cold
    assert ResultCache().entry_count() == 0


# ----------------------------------------------------------------------
# Failure paths: unknown component names exit 2 with the registry's
# uniform error on stderr (same message as the library paths).


@pytest.mark.parametrize(
    "argv, kind, known_sample",
    [
        (
            ["run", "--algorithm", "nonexistent", "--scale", "10"],
            "algorithm",
            "lazy",
        ),
        (
            ["run", "--workload", "nonexistent", "--scale", "10"],
            "workload",
            "splash2",
        ),
        (
            ["run", "--predictor", "Sub4k", "--scale", "10"],
            "predictor",
            "Sub2k",
        ),
        (
            [
                "trace",
                "workload",
                "--workload",
                "nonexistent",
                "--out",
                "/dev/null",
            ],
            "workload",
            "specjbb",
        ),
    ],
)
def test_cli_unknown_component_exits_2(argv, kind, known_sample, capsys):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert "unknown %s" % kind in err
    assert "known:" in err and known_sample in err


def test_cli_bench_check_missing_snapshot_skips(tmp_path, capsys):
    code = main(
        [
            "bench",
            "--scale", "20",
            "--trials", "1",
            "--check", str(tmp_path / "absent.json"),
        ]
    )
    assert code == 0
    assert "skipping regression check" in capsys.readouterr().out


def test_cli_bench_check_corrupt_snapshot_fails(tmp_path, capsys):
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{not json")
    code = main(
        [
            "bench",
            "--scale", "20",
            "--trials", "1",
            "--check", str(corrupt),
        ]
    )
    assert code == 1
    assert "corrupt baseline snapshot" in capsys.readouterr().err

    # Valid JSON with the wrong shape is also a corrupt baseline.
    corrupt.write_text('{"pr": 99}')
    code = main(
        [
            "bench",
            "--scale", "20",
            "--trials", "1",
            "--check", str(corrupt),
        ]
    )
    assert code == 1
    assert "corrupt baseline snapshot" in capsys.readouterr().err


def test_cli_cache_clear_empty_store(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "empty-cache"))
    assert main(["cache", "clear"]) == 0
    out = capsys.readouterr().out
    assert "removed 0" in out
    assert ResultCache().entry_count() == 0


# ----------------------------------------------------------------------
# Streaming sinks, conversion and cache pruning


def test_cli_trace_record_streaming_sink(tmp_path, capsys):
    from repro.obs.jsonl import read_trace

    out = tmp_path / "run.jsonl"
    code = main(
        [
            "trace", "record",
            "--algorithm", "lazy",
            "--workload", "specjbb",
            "--scale", "100",
            "--out", str(out),
            "--sink", "jsonl",
            "--audit",
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "(streamed)" in printed
    assert "audit: ok" in printed
    meta, events = read_trace(out)
    assert meta["algorithm"] == "lazy"
    assert len(events) > 0


def test_cli_trace_record_streamed_matches_memory(tmp_path):
    from repro.obs.jsonl import read_trace

    mem_out = tmp_path / "mem.jsonl"
    stream_out = tmp_path / "stream.jsonl"
    base = [
        "trace", "record", "--algorithm", "subset",
        "--workload", "specjbb", "--scale", "100",
    ]
    assert main(base + ["--out", str(mem_out)]) == 0
    assert main(
        base + ["--out", str(stream_out), "--sink", "jsonl"]
    ) == 0
    _meta_a, events_a = read_trace(mem_out)
    _meta_b, events_b = read_trace(stream_out)
    assert events_a == events_b


def test_cli_trace_convert_and_replay(tmp_path, capsys):
    src = tmp_path / "mem.trace"
    dst = tmp_path / "mem.jsonl"
    src.write_text(
        "1000,0,r,0x1000\n2000,0,w,0x1040\n3000,1,r,0x2000\n"
    )
    code = main(
        [
            "trace", "convert",
            "--format", "gem5",
            "--in", str(src),
            "--out", str(dst),
            "--cores-per-cmp", "1",
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "2 cores, 3 accesses" in printed
    loaded = load_trace(dst)
    assert loaded.total_accesses == 3


def test_cli_trace_convert_bad_input_exits_1(tmp_path, capsys):
    src = tmp_path / "mem.trace"
    src.write_text("definitely,not,right\n")
    code = main(
        [
            "trace", "convert",
            "--format", "gem5",
            "--in", str(src),
            "--out", str(tmp_path / "out.jsonl"),
        ]
    )
    assert code == 1
    assert "flexsnoop:" in capsys.readouterr().err


def test_cli_run_replays_trace_file(tmp_path, capsys):
    trace_path = tmp_path / "jbb.jsonl"
    assert main(
        ["trace", "workload", "--workload", "specjbb",
         "--scale", "100", "--out", str(trace_path)]
    ) == 0
    capsys.readouterr()
    code = main(
        ["run", "--algorithm", "lazy",
         "--workload", "file:%s" % trace_path, "--scale", "0"]
    )
    assert code == 0
    assert "exec time" in capsys.readouterr().out


def test_cli_cache_prune(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
    cache = ResultCache()
    import os

    for i, tag in enumerate("abcd"):
        key = (tag * 64)[:64]
        path = cache._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"x" * 1024)
        os.utime(path, (1_000_000 + i, 1_000_000 + i))

    code = main(["cache", "prune", "--max-size", "2K"])
    assert code == 0
    assert "removed 2 entry(ies)" in capsys.readouterr().out
    assert ResultCache().entry_count() == 2


def test_cli_cache_prune_requires_max_size(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
    code = main(["cache", "prune"])
    assert code == 2
    assert "--max-size" in capsys.readouterr().err


def test_cli_cache_prune_bad_size_exits_2(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
    with pytest.raises(SystemExit):
        main(["cache", "prune", "--max-size", "lots"])


@pytest.mark.parametrize(
    "text, expected",
    [("4096", 4096), ("64K", 65536), ("1M", 1 << 20),
     ("2g", 2 << 30), ("1.5K", 1536)],
)
def test_parse_size(text, expected):
    from repro.harness.cli import _parse_size

    assert _parse_size(text) == expected

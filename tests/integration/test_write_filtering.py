"""Integration tests for write-snoop filtering with the presence
predictor (the extension of Section 5.3's open question)."""

from __future__ import annotations

import pytest

from repro.config import CacheConfig, default_machine
from repro.coherence.states import LineState
from repro.core.algorithms import build_algorithm
from repro.sim.system import RingMultiprocessor
from repro.workloads.synthetic import SharingProfile, generate_workload
from repro.workloads.trace import Access, WorkloadTrace

N = 8
LINE = 0x1236


def single_write_system(filter_writes: bool):
    traces = [[] for _ in range(N)]
    traces[0] = [Access(address=LINE, is_write=True, think_time=0)]
    workload = WorkloadTrace(name="w", cores_per_cmp=1, traces=traces)
    machine = default_machine(
        algorithm="lazy",
        cores_per_cmp=1,
        cache=CacheConfig(num_lines=256, associativity=8),
        filter_write_snoops=filter_writes,
        track_versions=True,
    )
    return RingMultiprocessor(machine, build_algorithm("lazy"), workload)


def test_filtered_write_skips_empty_nodes():
    system = single_write_system(filter_writes=True)
    # Copies only at nodes 2 and 5.
    system.nodes[0].caches[0].fill(LINE, LineState.S)
    system.nodes[2].caches[0].fill(LINE, LineState.S)
    system.nodes[5].caches[0].fill(LINE, LineState.SG)
    result = system.run()
    # Only the two holder nodes are snooped (not all 7).
    assert result.stats.write_snoops == 2
    # All copies are still invalidated; the writer owns the line.
    assert system.nodes[2].caches[0].state_of(LINE) is LineState.I
    assert system.nodes[5].caches[0].state_of(LINE) is LineState.I
    assert system.nodes[0].caches[0].state_of(LINE) is LineState.D


def test_unfiltered_write_snoops_everyone():
    system = single_write_system(filter_writes=False)
    system.nodes[0].caches[0].fill(LINE, LineState.S)
    system.nodes[2].caches[0].fill(LINE, LineState.S)
    result = system.run()
    assert result.stats.write_snoops == N - 1


def test_filtering_preserves_correctness_under_load():
    profile = SharingProfile(
        name="wf-stress",
        num_cores=8,
        cores_per_cmp=2,
        accesses_per_core=300,
        p_shared=0.5,
        p_cold=0.05,
        shared_lines=64,
        private_lines=64,
        write_fraction_shared=0.4,
        migratory_fraction=0.2,
        think_mean=10.0,
        seed=13,
    )
    workload = generate_workload(profile)
    machine = default_machine(
        algorithm="superset_agg",
        num_cmps=4,
        cores_per_cmp=2,
        cache=CacheConfig(num_lines=128, associativity=4),
        filter_write_snoops=True,
        track_versions=True,
        check_invariants=True,
    )
    system = RingMultiprocessor(
        machine, build_algorithm("superset_agg"), workload
    )
    result = system.run()
    assert result.stats.version_violations == 0
    # The filter actually removed snoops.
    assert sum(p.filtered for p in system.presence) > 0


def test_filtering_reduces_write_snoops_on_private_workload():
    """On a no-sharing workload, almost no node holds the written
    lines, so nearly all write snoops are filtered."""
    profile = SharingProfile(
        name="wf-private",
        num_cores=8,
        cores_per_cmp=1,
        accesses_per_core=400,
        p_shared=0.0,
        p_cold=0.0,
        shared_lines=16,
        private_lines=4096,  # exceeds the 1k-line cache: write misses
        write_fraction_private=0.5,
        private_zipf_exponent=0.1,
        think_mean=10.0,
        seed=21,
    )
    workload = generate_workload(profile)

    def run(filter_writes: bool):
        machine = default_machine(
            algorithm="lazy",
            cores_per_cmp=1,
            cache=CacheConfig(num_lines=1024, associativity=8),
            filter_write_snoops=filter_writes,
        )
        system = RingMultiprocessor(
            machine, build_algorithm("lazy"), workload
        )
        return system.run()

    unfiltered = run(False)
    filtered = run(True)
    assert unfiltered.stats.write_ring_transactions > 0
    assert (
        filtered.stats.write_snoops
        < 0.3 * unfiltered.stats.write_snoops
    )
    # Reads are untouched by the write filter.
    assert filtered.stats.read_snoops == pytest.approx(
        unfiltered.stats.read_snoops,
        rel=0.1,
    )

"""Integration tests for end-to-end energy accounting: the right
categories get charged for the right algorithms."""

from __future__ import annotations

import pytest

from repro.config import CacheConfig, default_machine
from repro.coherence.states import LineState
from repro.core.algorithms import build_algorithm
from repro.sim.system import RingMultiprocessor
from repro.workloads.trace import Access, WorkloadTrace

N = 8
LINE = 0x1236
RING_LINK = 3.17
SNOOP = 0.69


def single_read_result(algorithm_name, supplier_at=4):
    traces = [[] for _ in range(N)]
    traces[0] = [Access(address=LINE, is_write=False, think_time=0)]
    workload = WorkloadTrace(name="e", cores_per_cmp=1, traces=traces)
    machine = default_machine(
        algorithm=algorithm_name,
        cores_per_cmp=1,
        cache=CacheConfig(num_lines=256, associativity=8),
    )
    system = RingMultiprocessor(
        machine, build_algorithm(algorithm_name), workload
    )
    if supplier_at is not None:
        system.nodes[supplier_at].caches[0].fill(LINE, LineState.E)
    return system.run()


def test_lazy_energy_is_links_plus_snoops_only():
    result = single_read_result("lazy", supplier_at=4)
    energy = result.energy
    # One combined message around the ring + snoops up to node 4.
    assert energy["ring_links"] == pytest.approx(N * RING_LINK)
    assert energy["snoops"] == pytest.approx(4 * SNOOP)
    assert energy["predictor_lookups"] == 0.0
    assert energy["predictor_updates"] == 0.0
    assert energy["downgrade_memory"] == 0.0
    assert result.total_energy == pytest.approx(
        N * RING_LINK + 4 * SNOOP
    )


def test_eager_pays_for_split_messages():
    result = single_read_result("eager", supplier_at=4)
    energy = result.energy
    assert energy["ring_links"] == pytest.approx((2 * N - 1) * RING_LINK)
    assert energy["snoops"] == pytest.approx((N - 1) * SNOOP)


def test_superset_charges_predictor_energy():
    result = single_read_result("superset_con", supplier_at=4)
    energy = result.energy
    assert energy["predictor_lookups"] > 0.0
    # Training happened too: the supplier fill inserted into the
    # node-4 predictor, and the requester's SL fill does not.
    assert energy["predictor_updates"] > 0.0


def test_oracle_predictor_is_free():
    result = single_read_result("oracle", supplier_at=4)
    energy = result.energy
    assert energy["predictor_lookups"] == 0.0
    assert energy["predictor_updates"] == 0.0


def test_exact_downgrade_charges_memory_energy():
    traces = [[] for _ in range(N)]
    workload = WorkloadTrace(name="e", cores_per_cmp=1, traces=traces)
    machine = default_machine(
        algorithm="exact",
        predictor="Exa512",
        cores_per_cmp=1,
        cache=CacheConfig(num_lines=8192, associativity=8),
    )
    system = RingMultiprocessor(
        machine, build_algorithm("exact"), workload
    )
    # Overflow one predictor set with dirty supplier lines: Exa512 is
    # 8-way with 64 sets, so 9 same-set dirty lines force a downgrade
    # with write-back.
    cache = system.nodes[2].caches[0]
    for i in range(9):
        cache.fill(0x40 + i * 64, LineState.D, version=i + 1)
    stats = system.stats
    assert stats.downgrades >= 1
    assert stats.downgrade_writebacks >= 1
    breakdown = system.energy.breakdown
    assert breakdown.downgrade_memory >= 24.0
    assert breakdown.downgrade_ops > 0.0


def test_write_filter_charges_presence_energy():
    traces = [[] for _ in range(N)]
    traces[0] = [Access(address=LINE, is_write=True, think_time=0)]
    workload = WorkloadTrace(name="e", cores_per_cmp=1, traces=traces)
    machine = default_machine(
        algorithm="lazy",
        cores_per_cmp=1,
        cache=CacheConfig(num_lines=256, associativity=8),
        filter_write_snoops=True,
    )
    system = RingMultiprocessor(machine, build_algorithm("lazy"),
                                workload)
    result = system.run()
    # All 7 remote nodes probed the presence filter; none held the
    # line, so no snoops were performed at all.
    assert result.stats.write_snoops == 0
    assert result.energy["predictor_lookups"] > 0.0
    assert result.energy["snoops"] == 0.0

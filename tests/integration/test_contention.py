"""Integration tests for the opt-in contention models: ring-link
bandwidth and CMP snoop-port serialization."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import CacheConfig, RingConfig, default_machine
from repro.core.algorithms import build_algorithm
from repro.sim.system import RingMultiprocessor
from repro.workloads.synthetic import SharingProfile, generate_workload


def contended_profile(seed=17):
    return SharingProfile(
        name="contended",
        num_cores=8,
        cores_per_cmp=1,
        accesses_per_core=400,
        p_shared=0.5,
        p_cold=0.1,
        shared_lines=128,
        private_lines=128,
        write_fraction_shared=0.3,
        think_mean=5.0,  # back-to-back misses: heavy ring load
        seed=seed,
    )


def run(algorithm_name, link_occupancy=0, serialize_port=False):
    workload = generate_workload(contended_profile())
    ring = RingConfig(
        link_occupancy=link_occupancy,
        serialize_snoop_port=serialize_port,
    )
    machine = default_machine(
        algorithm=algorithm_name,
        cores_per_cmp=1,
        cache=CacheConfig(num_lines=256, associativity=8),
        ring=ring,
        track_versions=True,
        check_invariants=True,
    )
    system = RingMultiprocessor(
        machine, build_algorithm(algorithm_name), workload
    )
    return system.run()


def test_link_contention_preserves_correctness():
    result = run("eager", link_occupancy=30)
    assert result.stats.version_violations == 0


def test_snoop_port_serialization_preserves_correctness():
    result = run("lazy", serialize_port=True)
    assert result.stats.version_violations == 0


def test_link_contention_slows_execution():
    free = run("eager", link_occupancy=0)
    tight = run("eager", link_occupancy=30)
    assert tight.exec_time > free.exec_time
    # Contention shifts timing, which can reshuffle a handful of
    # hit/miss interleavings, but the traffic volume stays put.
    assert tight.stats.read_snoops == pytest.approx(
        free.stats.read_snoops, rel=0.02
    )
    assert tight.stats.read_ring_crossings == pytest.approx(
        free.stats.read_ring_crossings, rel=0.02
    )


def test_contention_hurts_eager_more_than_lazy():
    """The paper's motivation: Eager's doubled traffic induces
    contention.  Under tight link bandwidth, Eager's advantage over
    Lazy shrinks."""
    occupancy = 35
    lazy_free = run("lazy", link_occupancy=0)
    eager_free = run("eager", link_occupancy=0)
    lazy_tight = run("lazy", link_occupancy=occupancy)
    eager_tight = run("eager", link_occupancy=occupancy)

    advantage_free = lazy_free.exec_time / eager_free.exec_time
    advantage_tight = lazy_tight.exec_time / eager_tight.exec_time
    assert advantage_tight < advantage_free


def test_snoop_port_hurts_snoop_heavy_algorithms_more():
    eager_free = run("eager", serialize_port=False)
    eager_serial = run("eager", serialize_port=True)
    oracle_free = run("oracle", serialize_port=False)
    oracle_serial = run("oracle", serialize_port=True)

    eager_slowdown = eager_serial.exec_time / eager_free.exec_time
    oracle_slowdown = oracle_serial.exec_time / oracle_free.exec_time
    # Eager snoops every node; Oracle once: the port queue punishes
    # Eager harder.
    assert eager_slowdown >= oracle_slowdown


def test_zero_occupancy_matches_baseline_exactly():
    a = run("superset_agg", link_occupancy=0)
    b = run("superset_agg", link_occupancy=0)
    assert a.exec_time == b.exec_time

"""Regression: the warmup-end reset must clear contention state.

``RingWalker.on_warmup_end`` historically rebound the stats/energy
objects but left ``_link_free`` and ``_snoop_port_free`` carrying
reservations made during warmup, so the measured phase started on a
backlogged interconnect.  The tests poison those structures at the
exact moment of the warmup reset: on a fixed walker the reset wipes
the poison and the run is bit-identical to an unpoisoned one; on the
pre-fix walker the poison survives into the measured phase and blows
the execution time up by orders of magnitude, so these tests fail.
"""

from __future__ import annotations

from repro.config import CacheConfig, RingConfig, default_machine
from repro.core.algorithms import build_algorithm
from repro.sim.system import RingMultiprocessor
from repro.workloads.synthetic import SharingProfile, generate_workload

#: Cycles of fake link/port backlog injected at the reset - far beyond
#: anything the measured phase could absorb unnoticed.
POISON_HORIZON = 500_000


def _profile():
    return SharingProfile(
        name="warmup-contended",
        num_cores=8,
        cores_per_cmp=1,
        accesses_per_core=400,
        p_shared=0.5,
        p_cold=0.1,
        shared_lines=128,
        private_lines=128,
        write_fraction_shared=0.3,
        think_mean=5.0,
        seed=23,
    )


def _build(warmup_fraction):
    workload = generate_workload(_profile())
    machine = default_machine(
        algorithm="eager",
        cores_per_cmp=1,
        cache=CacheConfig(num_lines=256, associativity=8),
        ring=RingConfig(link_occupancy=30, serialize_snoop_port=True),
    )
    return RingMultiprocessor(
        machine,
        build_algorithm("eager"),
        workload,
        warmup_fraction=warmup_fraction,
    )


def _run_clean(warmup_fraction=0.4):
    return _build(warmup_fraction).run()


def _run_poisoned(warmup_fraction=0.4):
    """Run with fake contention backlog injected just before the
    warmup reset rebinding (the poison models warmup-accumulated
    reservations; a correct reset must discard it)."""
    system = _build(warmup_fraction)
    walker = system.walker
    real_rebind = system.rebind_measurement

    def poisoned_rebind(stats, energy):
        horizon = system.engine.now + POISON_HORIZON
        for key in list(walker._link_free):
            walker._link_free[key] = horizon
        walker._link_free[(0, 0)] = horizon
        walker._snoop_port_free = (
            [horizon] * len(walker._snoop_port_free)
        )
        real_rebind(stats, energy)

    system.rebind_measurement = poisoned_rebind
    return system.run()


def test_warmup_reset_discards_contention_backlog():
    clean = _run_clean()
    poisoned = _run_poisoned()
    assert poisoned.exec_time == clean.exec_time
    assert poisoned.stats.summary() == clean.stats.summary()


def test_measured_phase_starts_on_idle_interconnect():
    """Directly after the reset, no link or port reservation may
    extend into the measured phase."""
    system = _build(0.4)
    walker = system.walker
    real_rebind = system.rebind_measurement
    observed = {}

    def checking_rebind(stats, energy):
        real_rebind(stats, energy)
        now = system.engine.now
        observed["links_busy"] = walker.links_busy(now)
        observed["port_backlog"] = walker.snoop_port_backlog(now)

    system.rebind_measurement = checking_rebind
    system.run()
    assert observed == {"links_busy": 0, "port_backlog": 0.0}

"""Calibration tests: the synthetic workload profiles must keep
matching the paper's characterization of each workload class.

These are the contracts that the figure benchmarks rely on; if a
profile change breaks one, the figures drift from the paper's shapes.
They run at reduced scale, so the bands are wider than the benchmark
suite's.
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import run_experiment

SCALE = {"splash2": 1000, "specjbb": 2000, "specweb": 2000}


@pytest.fixture(scope="module")
def lazy_runs():
    return {
        workload: run_experiment(
            "lazy", workload, accesses_per_core=SCALE[workload]
        )
        for workload in SCALE
    }


def test_splash2_supplier_mostly_found(lazy_runs):
    # Paper (Fig. 11): SPLASH-2 ring reads find a supplier most of the
    # time, ~4 negative predictions per positive.
    fraction = lazy_runs["splash2"].stats.supplier_found_fraction
    assert 0.6 < fraction < 0.95


def test_specjbb_supplier_rarely_found(lazy_runs):
    fraction = lazy_runs["specjbb"].stats.supplier_found_fraction
    assert fraction < 0.15


def test_specweb_between(lazy_runs):
    fraction = lazy_runs["specweb"].stats.supplier_found_fraction
    assert (
        lazy_runs["specjbb"].stats.supplier_found_fraction
        < fraction
        < lazy_runs["splash2"].stats.supplier_found_fraction
    )


def test_lazy_snoop_counts_match_paper(lazy_runs):
    # Fig. 6: Lazy ~4.5 (SPLASH-2), close to 7 (SPECjbb).
    assert 4.0 < lazy_runs["splash2"].stats.snoops_per_read_request < 5.5
    assert lazy_runs["specjbb"].stats.snoops_per_read_request > 6.5


def test_perfect_predictor_tn_to_tp_ratio(lazy_runs):
    # Fig. 11's perfect predictor: ~4 TNs per TP on SPLASH-2.
    accuracy = lazy_runs["splash2"].stats.perfect_accuracy
    ratio = accuracy.true_negative / max(accuracy.true_positive, 1)
    assert 2.5 < ratio < 7.0


def test_miss_rates_are_realistic(lazy_runs):
    # The ring-transaction rate must stay in the single-digit-percent
    # band of L2-level accesses; otherwise execution time becomes a
    # pure function of ring latency (which the paper's 6-14% spreads
    # contradict).
    for workload, result in lazy_runs.items():
        stats = result.stats
        rate = stats.read_ring_transactions / max(stats.reads, 1)
        assert rate < 0.30, (workload, rate)


def test_workload_writes_are_minority(lazy_runs):
    for workload, result in lazy_runs.items():
        stats = result.stats
        assert stats.writes < stats.reads, workload


def test_collisions_are_rare(lazy_runs):
    # Squash/retry must stay a rounding error, not a throughput
    # determinant (the paper's protocol resolves collisions with a
    # single squash).
    for workload, result in lazy_runs.items():
        stats = result.stats
        transactions = (
            stats.read_ring_transactions + stats.write_ring_transactions
        )
        assert stats.squashes < 0.10 * max(transactions, 1), workload

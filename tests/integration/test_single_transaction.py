"""Integration tests driving single, hand-constructed transactions
through the full system and checking the exact cycle-level timing of
each algorithm's ring walk against closed-form expectations.

The machine is unloaded (one access in the whole trace), so latencies
are exactly the Table 1 / Table 3 formulas.
"""

from __future__ import annotations

import pytest

from repro.config import CacheConfig, default_machine
from repro.coherence.states import LineState
from repro.core.algorithms import build_algorithm
from repro.sim.system import RingMultiprocessor
from repro.workloads.trace import Access, WorkloadTrace

HOP = 39
SNOOP = 55
N = 8
# Homed at node 6 (LINE % N == 6): remote for requester core 0, so the
# memory-path tests exercise the remote/prefetch latencies.
LINE = 0x1236


def single_read_workload(core: int = 0, address: int = LINE):
    traces = [[] for _ in range(N)]
    traces[core] = [Access(address=address, is_write=False, think_time=0)]
    return WorkloadTrace(name="single", cores_per_cmp=1, traces=traces)


def build_system(algorithm_name: str, predictor: str = None,
                 prefetch: bool = True):
    machine = default_machine(
        algorithm=algorithm_name,
        predictor=predictor,
        cores_per_cmp=1,
        cache=CacheConfig(num_lines=256, associativity=8),
        track_versions=True,
        check_invariants=True,
    )
    if not prefetch:
        import dataclasses

        machine = machine.replace(
            memory=dataclasses.replace(machine.memory,
                                       prefetch_on_snoop=False)
        )
    algorithm = build_algorithm(algorithm_name)
    system = RingMultiprocessor(machine, algorithm,
                                single_read_workload())
    return system


def plant_supplier(system, node_id: int, state=LineState.E,
                   address: int = LINE, version: int = 0):
    """Install a supplier copy before the run starts."""
    system.nodes[node_id].caches[0].fill(address, state, version)


def data_latency(system, src: int, dst: int) -> int:
    return system.torus.transfer_latency(src, dst)


# ----------------------------------------------------------------------
# Data arrival timing (= read miss service time on the unloaded ring)


def read_latency(system) -> int:
    result = system.run()
    assert result.stats.read_ring_transactions == 1
    assert result.stats.reads_supplied_by_cache == 1
    return result.stats.mean_read_miss_latency


@pytest.mark.parametrize("distance", [1, 3, 7])
def test_lazy_latency_snoops_at_every_hop(distance):
    system = build_system("lazy")
    plant_supplier(system, distance)
    expected = distance * (HOP + SNOOP) + data_latency(system, distance, 0)
    assert read_latency(system) == expected


@pytest.mark.parametrize("distance", [1, 4, 7])
def test_eager_latency_one_snoop_time(distance):
    system = build_system("eager")
    plant_supplier(system, distance)
    expected = distance * HOP + SNOOP + data_latency(system, distance, 0)
    assert read_latency(system) == expected


@pytest.mark.parametrize("distance", [2, 5])
def test_oracle_latency_matches_eager(distance):
    system = build_system("oracle")
    plant_supplier(system, distance)
    expected = distance * HOP + SNOOP + data_latency(system, distance, 0)
    assert read_latency(system) == expected


@pytest.mark.parametrize("distance", [2, 6])
def test_subset_latency_with_trained_predictor(distance):
    system = build_system("subset")
    plant_supplier(system, distance)  # fill trains the predictor
    pred = 2  # predictor access latency on the request path
    expected = (
        distance * (HOP + pred) + SNOOP + data_latency(system, distance, 0)
    )
    assert read_latency(system) == expected


@pytest.mark.parametrize("distance", [2, 6])
def test_superset_con_latency_no_false_positives(distance):
    system = build_system("superset_con")
    plant_supplier(system, distance)
    pred = 2
    expected = (
        distance * (HOP + pred) + SNOOP + data_latency(system, distance, 0)
    )
    assert read_latency(system) == expected


@pytest.mark.parametrize("distance", [2, 6])
def test_superset_agg_latency(distance):
    system = build_system("superset_agg")
    plant_supplier(system, distance)
    pred = 2
    expected = (
        distance * (HOP + pred) + SNOOP + data_latency(system, distance, 0)
    )
    assert read_latency(system) == expected


# ----------------------------------------------------------------------
# Snoop counts on the unloaded walk


def run_and_count(system):
    result = system.run()
    return result.stats


@pytest.mark.parametrize("distance", [1, 4, 7])
def test_lazy_snoops_up_to_supplier(distance):
    system = build_system("lazy")
    plant_supplier(system, distance)
    stats = run_and_count(system)
    assert stats.read_snoops == distance


@pytest.mark.parametrize("distance", [1, 4])
def test_eager_snoops_everyone(distance):
    system = build_system("eager")
    plant_supplier(system, distance)
    stats = run_and_count(system)
    assert stats.read_snoops == N - 1


@pytest.mark.parametrize("distance", [1, 4, 7])
def test_oracle_snoops_only_supplier(distance):
    system = build_system("oracle")
    plant_supplier(system, distance)
    stats = run_and_count(system)
    assert stats.read_snoops == 1


def test_oracle_no_snoops_when_memory_supplies():
    system = build_system("oracle")
    stats = run_and_count(system)
    assert stats.read_snoops == 0
    assert stats.reads_supplied_by_memory == 1


@pytest.mark.parametrize("distance", [3, 7])
def test_subset_true_positive_stops_snooping_downstream(distance):
    system = build_system("subset")
    plant_supplier(system, distance)
    stats = run_and_count(system)
    # Forward-Then-Snoop at every node up to the supplier, where the
    # true positive recombines and the rest only forward.
    assert stats.read_snoops == distance


def test_superset_con_snoops_only_supplier_without_fp():
    system = build_system("superset_con")
    plant_supplier(system, 5)
    stats = run_and_count(system)
    assert stats.read_snoops == 1


def test_exact_snoops_only_supplier():
    system = build_system("exact")
    plant_supplier(system, 5)
    stats = run_and_count(system)
    assert stats.read_snoops == 1


# ----------------------------------------------------------------------
# Ring message crossings


@pytest.mark.parametrize(
    "algorithm,expected_crossings",
    [
        ("lazy", N),  # one combined message all the way around
        ("superset_con", N),
        ("exact", N),
        ("oracle", N),
        ("eager", 2 * N - 1),  # request + reply from the first node on
    ],
)
def test_crossings_with_supplier_midway(algorithm, expected_crossings):
    system = build_system(algorithm)
    plant_supplier(system, 4)
    stats = run_and_count(system)
    assert stats.read_ring_crossings == expected_crossings


def test_subset_crossings_recombine_at_supplier():
    distance = 4
    system = build_system("subset")
    plant_supplier(system, distance)
    stats = run_and_count(system)
    # Split at node 1, trailing reply discarded at the supplier:
    # request N crossings + reply (distance - 1) crossings.
    assert stats.read_ring_crossings == N + distance - 1


def test_superset_agg_crossings_split_at_supplier():
    distance = 4
    system = build_system("superset_agg")
    plant_supplier(system, distance)
    stats = run_and_count(system)
    # Combined until the supplier (the only positive prediction),
    # split there: request N + reply (N - distance).
    assert stats.read_ring_crossings == N + (N - distance)


# ----------------------------------------------------------------------
# Memory path and the prefetch heuristic


def test_memory_read_latency_uses_prefetch():
    system = build_system("lazy")
    result = system.run()
    stats = result.stats
    assert stats.reads_supplied_by_memory == 1
    assert stats.reads_prefetched == 1
    ring_time = N * HOP + (N - 1) * SNOOP
    assert stats.mean_read_miss_latency == ring_time + 312


def test_memory_read_latency_without_prefetch():
    system = build_system("lazy", prefetch=False)
    result = system.run()
    ring_time = N * HOP + (N - 1) * SNOOP
    assert result.stats.mean_read_miss_latency == ring_time + 710


def test_local_memory_latency():
    # Choose a line homed at the requester (address % 8 == 0).
    address = 0x1000
    traces = [[] for _ in range(N)]
    traces[0] = [Access(address=address, is_write=False, think_time=0)]
    workload = WorkloadTrace(name="single", cores_per_cmp=1, traces=traces)
    machine = default_machine(
        algorithm="lazy",
        cores_per_cmp=1,
        cache=CacheConfig(num_lines=256, associativity=8),
    )
    system = RingMultiprocessor(machine, build_algorithm("lazy"), workload)
    result = system.run()
    ring_time = N * HOP + (N - 1) * SNOOP
    assert result.stats.mean_read_miss_latency == ring_time + 350


# ----------------------------------------------------------------------
# Protocol state after the transaction


@pytest.mark.parametrize(
    "initial,expected_supplier",
    [
        (LineState.E, LineState.SG),
        (LineState.SG, LineState.SG),
        (LineState.D, LineState.T),
        (LineState.T, LineState.T),
    ],
)
def test_supplier_state_transition_on_read(initial, expected_supplier):
    system = build_system("lazy")
    plant_supplier(system, 3, state=initial)
    system.run()
    assert system.nodes[3].caches[0].state_of(LINE) is expected_supplier
    # The requester becomes its CMP's local master.
    assert system.nodes[0].caches[0].state_of(LINE) is LineState.SL


def test_memory_read_fills_exclusive():
    system = build_system("lazy")
    system.run()
    assert system.nodes[0].caches[0].state_of(LINE) is LineState.E


def test_memory_read_fills_global_master_if_copies_exist():
    system = build_system("lazy")
    # A plain-S copy elsewhere (no supplier) - e.g. the old master was
    # evicted.
    system.nodes[5].caches[0].fill(LINE, LineState.S)
    system.run()
    assert system.nodes[0].caches[0].state_of(LINE) is LineState.SG

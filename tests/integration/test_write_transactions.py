"""Integration tests for write snoop transactions: upgrades, write
misses, invalidation, and the coupled/decoupled handling of
Section 5.3."""

from __future__ import annotations

import pytest

from repro.config import CacheConfig, default_machine
from repro.coherence.states import LineState
from repro.core.algorithms import build_algorithm
from repro.sim.system import RingMultiprocessor
from repro.workloads.trace import Access, WorkloadTrace

HOP = 39
SNOOP = 55
N = 8
LINE = 0x1236


def workload(accesses_by_core):
    traces = [[] for _ in range(N)]
    for core, accesses in accesses_by_core.items():
        traces[core] = [
            Access(address=a, is_write=w, think_time=t)
            for (a, w, t) in accesses
        ]
    return WorkloadTrace(name="w", cores_per_cmp=1, traces=traces)


def build_system(algorithm_name, accesses_by_core, **machine_overrides):
    machine = default_machine(
        algorithm=algorithm_name,
        cores_per_cmp=1,
        cache=CacheConfig(num_lines=256, associativity=8),
        track_versions=True,
        check_invariants=True,
        **machine_overrides,
    )
    system = RingMultiprocessor(
        machine, build_algorithm(algorithm_name), workload(accesses_by_core)
    )
    return system


# ----------------------------------------------------------------------
# Silent upgrade


def test_write_to_exclusive_is_silent():
    system = build_system("lazy", {0: [(LINE, True, 0)]})
    system.nodes[0].caches[0].fill(LINE, LineState.E)
    result = system.run()
    assert result.stats.write_ring_transactions == 0
    assert result.stats.write_hits_exclusive == 1
    assert system.nodes[0].caches[0].state_of(LINE) is LineState.D


def test_write_to_dirty_is_silent():
    system = build_system("lazy", {0: [(LINE, True, 0)]})
    system.nodes[0].caches[0].fill(LINE, LineState.D)
    result = system.run()
    assert result.stats.write_ring_transactions == 0


# ----------------------------------------------------------------------
# Ring upgrades invalidate all other copies


@pytest.mark.parametrize("writer_state", [
    LineState.S, LineState.SL, LineState.SG, LineState.T,
])
def test_upgrade_invalidates_other_copies(writer_state):
    system = build_system("lazy", {0: [(LINE, True, 0)]})
    system.nodes[0].caches[0].fill(LINE, writer_state)
    other_state = (
        LineState.S if writer_state in (LineState.SG, LineState.T)
        else LineState.S
    )
    system.nodes[2].caches[0].fill(LINE, other_state)
    system.nodes[5].caches[0].fill(LINE, other_state)
    result = system.run()
    assert result.stats.write_ring_transactions == 1
    assert system.nodes[0].caches[0].state_of(LINE) is LineState.D
    assert system.nodes[2].caches[0].state_of(LINE) is LineState.I
    assert system.nodes[5].caches[0].state_of(LINE) is LineState.I


def test_write_snoops_every_node():
    system = build_system("lazy", {0: [(LINE, True, 0)]})
    system.nodes[0].caches[0].fill(LINE, LineState.S)
    result = system.run()
    assert result.stats.write_snoops == N - 1


# ----------------------------------------------------------------------
# Write misses fetch data


def test_write_miss_supplied_by_cache():
    system = build_system("lazy", {0: [(LINE, True, 0)]})
    system.nodes[3].caches[0].fill(LINE, LineState.D, version=5)
    result = system.run()
    assert result.stats.writes_supplied_by_cache == 1
    assert system.nodes[0].caches[0].state_of(LINE) is LineState.D
    assert system.nodes[3].caches[0].state_of(LINE) is LineState.I


def test_write_miss_supplied_by_memory():
    system = build_system("lazy", {0: [(LINE, True, 0)]})
    result = system.run()
    assert result.stats.writes_supplied_by_memory == 1
    assert system.nodes[0].caches[0].state_of(LINE) is LineState.D


# ----------------------------------------------------------------------
# Coupled vs decoupled timing (Section 5.3)


def write_completion_time(algorithm_name):
    system = build_system(algorithm_name, {0: [(LINE, True, 0)]})
    system.nodes[0].caches[0].fill(LINE, LineState.S)  # upgrade, no data
    result = system.run()
    return result.exec_time


def test_coupled_write_is_serial():
    # Lazy couples write snoops: each hop pays the snoop.
    assert write_completion_time("lazy") == N * HOP + (N - 1) * SNOOP


def test_decoupled_write_parallel_invalidation():
    # Eager decouples: the request races ahead; the reply collects the
    # last snoop outcome at the final node.
    expected = N * HOP + SNOOP
    assert write_completion_time("eager") == expected


def test_superset_con_couples_writes():
    assert write_completion_time("superset_con") == (
        write_completion_time("lazy")
    )


def test_superset_agg_decouples_writes():
    assert write_completion_time("superset_agg") == (
        write_completion_time("eager")
    )


def test_decoupled_write_messages_nearly_double():
    coupled = build_system("lazy", {0: [(LINE, True, 0)]})
    coupled.nodes[0].caches[0].fill(LINE, LineState.S)
    decoupled = build_system("eager", {0: [(LINE, True, 0)]})
    decoupled.nodes[0].caches[0].fill(LINE, LineState.S)
    assert coupled.run().stats.write_ring_crossings == N
    assert decoupled.run().stats.write_ring_crossings == 2 * N - 1


# ----------------------------------------------------------------------
# Read-after-write coherence across nodes


def test_reader_sees_writers_data():
    system = build_system(
        "lazy",
        {
            0: [(LINE, True, 0)],
            4: [(LINE, False, 5000)],  # read well after the write
        },
    )
    result = system.run()
    assert result.stats.version_violations == 0
    # The writer supplied the dirty line cache-to-cache and moved to T.
    assert system.nodes[0].caches[0].state_of(LINE) is LineState.T
    assert system.nodes[4].caches[0].state_of(LINE) is LineState.SL
    assert result.stats.reads_supplied_by_cache == 1


def test_two_writers_serialize():
    system = build_system(
        "lazy",
        {
            0: [(LINE, True, 0)],
            4: [(LINE, True, 0)],  # simultaneous write: collision
        },
    )
    result = system.run()
    assert result.stats.squashes >= 1
    assert result.stats.retries >= 1
    assert result.stats.version_violations == 0
    # Exactly one final owner in D.
    owners = [
        node.cmp_id
        for node in system.nodes
        if node.caches[0].state_of(LINE) is LineState.D
    ]
    assert len(owners) == 1


def test_read_during_write_squashes_and_retries():
    system = build_system(
        "lazy",
        {
            0: [(LINE, True, 0)],
            4: [(LINE, False, 50)],  # lands mid-write
        },
    )
    result = system.run()
    assert result.stats.version_violations == 0
    assert system.nodes[4].caches[0].state_of(LINE) in (
        LineState.SL,
        LineState.E,  # if it retried after the writer's line moved on
        LineState.S,
    )

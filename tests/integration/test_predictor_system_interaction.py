"""Targeted tests of predictor/system interactions the figures depend
on: the Subset false-negative walk, Superset false-positive snoops,
Exclude-cache thrash, and filter organizations."""

from __future__ import annotations

import pytest

from repro.config import (
    CacheConfig,
    PredictorConfig,
    default_machine,
)
from repro.coherence.states import LineState
from repro.core.algorithms import build_algorithm
from repro.core.predictors import SupersetPredictor
from repro.sim.system import RingMultiprocessor
from repro.workloads.trace import Access, WorkloadTrace

N = 8
LINE = 0x1236


def single_read_system(algorithm_name, predictor_config=None):
    traces = [[] for _ in range(N)]
    traces[0] = [Access(address=LINE, is_write=False, think_time=0)]
    workload = WorkloadTrace(name="p", cores_per_cmp=1, traces=traces)
    machine = default_machine(
        algorithm=algorithm_name,
        cores_per_cmp=1,
        cache=CacheConfig(num_lines=256, associativity=8),
        track_versions=True,
    )
    if predictor_config is not None:
        machine = machine.replace(predictor=predictor_config)
    return RingMultiprocessor(
        machine, build_algorithm(algorithm_name), workload
    )


def test_subset_false_negative_still_supplied_but_snoops_ring():
    """A conflict-dropped supplier entry makes the Subset predictor
    answer 'no' at the supplier node.  The algorithm must fall back
    to Forward-Then-Snoop: the line is still supplied (correctness),
    but the request keeps snooping downstream nodes (Table 3's
    'Lazy + a*FN' column)."""
    system = single_read_system("subset")
    supplier_node = system.nodes[4]
    supplier_node.caches[0].fill(LINE, LineState.E)
    # Force the false negative: drop the predictor entry without
    # touching the cache (as a capacity conflict would).
    supplier_node.predictor.remove(LINE)
    result = system.run()

    assert result.stats.reads_supplied_by_cache == 1  # correctness
    # All 7 nodes snooped: 3 before the supplier (all FTS on true
    # negatives), the supplier itself (FTS on the false negative),
    # and - because the request raced ahead unsatisfied - the 3 after.
    assert result.stats.read_snoops == N - 1
    assert result.stats.accuracy.false_negative == 1


def test_subset_true_positive_stops_downstream_snoops():
    system = single_read_system("subset")
    system.nodes[4].caches[0].fill(LINE, LineState.E)
    result = system.run()
    assert result.stats.read_snoops == 4  # up to and incl. supplier
    assert result.stats.accuracy.true_positive == 1


def test_superset_false_positive_costs_one_snoop():
    """Plant an aliasing line so an intermediate node predicts
    positive: Superset Con snoops there (wasted) and then continues
    to the real supplier."""
    # A 1-field, 2-bit Bloom filter: addresses congruent mod 4 alias.
    config = PredictorConfig(
        kind="superset", bloom_fields=(2,), exclude_entries=0
    )
    system = single_read_system("superset_con", config)
    system.nodes[5].caches[0].fill(LINE, LineState.E)  # real supplier
    # Node 2 holds an aliasing supplier line (same low 2 bits).
    system.nodes[2].caches[0].fill(LINE + 4, LineState.E)
    result = system.run()
    assert result.stats.reads_supplied_by_cache == 1
    assert result.stats.read_snoops == 2  # the FP node + the supplier
    assert result.stats.accuracy.false_positive == 1


def test_exclude_cache_suppresses_repeat_false_positives():
    """After one wasted snoop, the Exclude cache remembers the
    address; a second read of the same line skips the FP node."""
    config = PredictorConfig(
        kind="superset",
        bloom_fields=(2,),
        exclude_entries=16,
        exclude_associativity=4,
    )
    traces = [[] for _ in range(N)]
    traces[0] = [
        Access(address=LINE, is_write=False, think_time=0),
    ]
    traces[7] = [
        Access(address=LINE, is_write=False, think_time=20000),
    ]
    workload = WorkloadTrace(name="p", cores_per_cmp=1, traces=traces)
    machine = default_machine(
        algorithm="superset_con",
        cores_per_cmp=1,
        cache=CacheConfig(num_lines=256, associativity=8),
    ).replace(predictor=config)
    system = RingMultiprocessor(
        machine, build_algorithm("superset_con"), workload
    )
    system.nodes[5].caches[0].fill(LINE, LineState.E)
    system.nodes[2].caches[0].fill(LINE + 4, LineState.E)  # alias
    result = system.run()
    # First walk: FP snoop at node 2 + supplier snoop.  Second walk
    # (from node 7): node 2's Exclude entry suppresses the repeat FP;
    # only the supplier is snooped.
    assert result.stats.accuracy.false_positive == 1
    assert result.stats.read_snoops == 3


def test_exclude_cache_thrashes_under_streaming():
    """The SPECjbb phenomenon at unit scale: a stream of
    never-repeated false positives defeats the Exclude cache (each
    entry is installed and evicted before any reuse)."""
    predictor = SupersetPredictor(
        PredictorConfig(
            kind="superset",
            bloom_fields=(2,),  # 4 counters: saturate trivially
            exclude_entries=8,
            exclude_associativity=2,
        )
    )
    for address in range(4):
        predictor.insert(address)  # saturate every counter
    hits = 0
    for address in range(100, 400):  # streaming, no repeats
        if predictor.lookup(address):
            predictor.observe_false_positive(address)
        else:
            hits += 1
    # The Exclude cache never helps: no streamed address repeats.
    assert hits == 0
    assert predictor.exclude_hits == 0


def test_y_and_n_filter_organizations_differ():
    """The paper's y (10,4,7) and n (9,9,6) filters hash differently:
    over a random supplier set they disagree on some absent
    addresses, while both remain false-negative-free."""
    y = SupersetPredictor(
        PredictorConfig(kind="superset", bloom_fields=(10, 4, 7),
                        exclude_entries=0)
    )
    n = SupersetPredictor(
        PredictorConfig(kind="superset", bloom_fields=(9, 9, 6),
                        exclude_entries=0)
    )
    from repro.workloads.synthetic import scramble

    live = [scramble(i) for i in range(3000)]
    for address in live:
        y.insert(address)
        n.insert(address)
    for address in live[:500]:
        assert y.lookup(address) and n.lookup(address)

    probes = [scramble(10_000 + i) for i in range(2000)]
    disagreements = sum(
        1 for address in probes if y.lookup(address) != n.lookup(address)
    )
    assert disagreements > 0

"""Integration tests for the loaded-regime saturation study.

Covers the closed-loop injection sweep end to end: think-scale
re-pacing of synthetic workloads, monotone loaded latency under
contention, knee interpolation, serial/parallel equivalence of
contended runs, and the ``flexsnoop figure saturation`` CLI surface.
"""

from __future__ import annotations

import pytest

from repro.harness.cli import main
from repro.harness.parallel import run_specs
from repro.harness.saturation import (
    Knee,
    SaturationCurve,
    SaturationPoint,
    _saturation_spec,
    format_saturation,
    run_saturation,
)
from repro.workloads.source import resolve_source

TINY = dict(
    workload="specjbb",
    accesses_per_core=150,
    warmup_fraction=0.0,
    jobs=1,
    cache=None,
)


def _point(offered, latency, scale=1.0, achieved=None):
    return SaturationPoint(
        think_scale=scale,
        offered_rate=offered,
        achieved_rate=achieved if achieved is not None else offered,
        latency=latency,
        exec_time=10_000,
        retries=0,
    )


# ----------------------------------------------------------------------
# Injection sweep physics


def test_two_point_sweep_latency_monotone_under_load():
    """Cutting think times must not *reduce* the loaded read-miss
    latency once link occupancy is finite."""
    (curve,) = run_saturation(
        algorithms=("lazy",),
        topologies=("ring",),
        think_scales=(1.0, 0.25),
        **TINY
    )
    assert len(curve.points) == 2
    light, heavy = sorted(
        curve.points, key=lambda p: p.offered_rate
    )
    assert light.think_scale == 1.0 and heavy.think_scale == 0.25
    assert heavy.offered_rate > light.offered_rate
    assert heavy.latency >= light.latency
    # The offered-rate extrapolation anchors on the lightest point.
    assert light.offered_rate == pytest.approx(light.achieved_rate)
    assert heavy.offered_rate == pytest.approx(
        light.achieved_rate * (1.0 / 0.25)
    )


def test_think_scale_repaces_without_changing_footprint():
    """The injection axis only stretches pacing: the re-paced trace
    touches exactly the addresses of the native one."""
    native = resolve_source(
        "specjbb", accesses_per_core=80, seed=0
    ).materialize()
    paced = resolve_source(
        "specjbb", accesses_per_core=80, seed=0, think_scale=0.3
    ).materialize()
    total_native = total_paced = 0
    for core_native, core_paced in zip(native.traces, paced.traces):
        assert [(a.address, a.is_write) for a in core_native] == [
            (a.address, a.is_write) for a in core_paced
        ]
        total_native += sum(a.think_time for a in core_native)
        total_paced += sum(a.think_time for a in core_paced)
    assert 0 < total_paced < total_native


def test_native_pacing_descriptor_unchanged():
    """``think_scale=1.0`` must leave the source descriptor - and so
    every cache and prewarm key - byte-identical to the seed's."""
    base = resolve_source("specjbb", accesses_per_core=80, seed=0)
    explicit = resolve_source(
        "specjbb", accesses_per_core=80, seed=0, think_scale=1.0
    )
    assert explicit.descriptor() == base.descriptor()
    paced = resolve_source(
        "specjbb", accesses_per_core=80, seed=0, think_scale=0.5
    )
    assert paced.descriptor() != base.descriptor()


# ----------------------------------------------------------------------
# Knee detection


def test_knee_interpolates_between_straddling_points():
    curve = SaturationCurve(
        algorithm="lazy", topology="ring", workload="synthetic"
    )
    curve.points = [
        _point(1.0, 100.0, scale=1.0),
        _point(2.0, 120.0, scale=0.5),
        _point(4.0, 300.0, scale=0.25),
    ]
    knee = curve.knee(factor=2.0)
    assert isinstance(knee, Knee)
    # Threshold 200 lies between (2.0, 120) and (4.0, 300):
    # frac = (200-120)/(300-120) = 4/9.
    assert knee.latency == pytest.approx(200.0)
    assert knee.offered_rate == pytest.approx(2.0 + 2.0 * 80.0 / 180.0)
    assert knee.think_scale == 0.25


def test_knee_none_when_curve_stays_flat():
    curve = SaturationCurve(
        algorithm="lazy", topology="ring", workload="synthetic"
    )
    curve.points = [
        _point(1.0, 100.0),
        _point(2.0, 150.0),
    ]
    assert curve.knee(factor=2.0) is None
    assert curve.saturation_throughput == 2.0
    assert curve.base_latency == 100.0


def test_knee_requires_two_points():
    curve = SaturationCurve(
        algorithm="lazy", topology="ring", workload="synthetic"
    )
    curve.points = [_point(1.0, 100.0)]
    assert curve.knee() is None


def test_format_reports_knee_and_summary():
    curve = SaturationCurve(
        algorithm="lazy", topology="ring", workload="synthetic"
    )
    curve.points = [
        _point(1.0, 100.0, scale=1.0),
        _point(4.0, 300.0, scale=0.25),
    ]
    text = format_saturation([curve])
    assert "Loaded latency [lazy, topology=ring, synthetic]" in text
    assert "knee:" in text
    assert "Saturation summary" in text
    assert "saturation throughput:" in text


# ----------------------------------------------------------------------
# Parallel-harness equivalence under contention (satellite: the
# contended cells must be scheduling-invariant)


def test_contended_runs_identical_serial_and_parallel():
    specs = [
        _saturation_spec(
            "lazy", "ring", "specjbb", scale,
            150, 0, 0.0, 30, True, 0, "object",
        )
        for scale in (1.0, 0.3)
    ]
    serial = run_specs(specs, jobs=1)
    parallel = run_specs(specs, jobs=2)
    for left, right in zip(serial, parallel):
        assert left.exec_time == right.exec_time
        assert left.stats.summary() == right.stats.summary()


# ----------------------------------------------------------------------
# CLI surface (acceptance: curves with knees for lazy/eager/oracle on
# ring and hier_ring - exercised here at smoke scale)


def test_figure_saturation_cli_all_pairs(capsys):
    rc = main([
        "figure", "saturation",
        "--workload", "specjbb",
        "--algorithms", "lazy,eager,oracle",
        "--topologies", "ring,hier_ring",
        "--think-scales", "1.0,0.3",
        "--scale", "120",
        "--jobs", "2",
        "--no-cache",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    for algorithm in ("lazy", "eager", "oracle"):
        for topology in ("ring", "hier_ring"):
            assert (
                "Loaded latency [%s, topology=%s"
                % (algorithm, topology)
            ) in out
    assert "Saturation summary" in out
    assert out.count("knee:") == 6


def test_figure_saturation_cli_rejects_bad_scales(capsys):
    rc = main([
        "figure", "saturation",
        "--think-scales", "1.0,zero",
    ])
    assert rc == 2
    assert "think-scales" in capsys.readouterr().err

"""Integration tests for the measurement-window machinery: statistics
warmup and cache prewarm."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import CacheConfig, default_machine
from repro.coherence.states import LineState
from repro.core.algorithms import build_algorithm
from repro.sim import system as system_module
from repro.sim.system import RingMultiprocessor
from repro.sim.warmup import WarmupController
from repro.workloads.synthetic import SharingProfile, generate_workload


def profile(prewarm_fraction=0.0, seed=23):
    return SharingProfile(
        name="warm",
        num_cores=4,
        cores_per_cmp=1,
        accesses_per_core=400,
        p_shared=0.3,
        p_cold=0.1,
        shared_lines=64,
        private_lines=128,
        prewarm_fraction=prewarm_fraction,
        seed=seed,
    )


def build(prewarm_fraction=0.0, warmup_fraction=0.0):
    workload = generate_workload(profile(prewarm_fraction))
    machine = default_machine(
        algorithm="lazy",
        num_cmps=4,
        cores_per_cmp=1,
        cache=CacheConfig(num_lines=256, associativity=8),
        track_versions=True,
    )
    return RingMultiprocessor(
        machine,
        build_algorithm("lazy"),
        workload,
        warmup_fraction=warmup_fraction,
    )


# ----------------------------------------------------------------------
# Warmup (statistics reset)


def test_warmup_reduces_counted_accesses():
    full = build(warmup_fraction=0.0).run()
    measured = build(warmup_fraction=0.5).run()
    assert measured.stats.reads < full.stats.reads
    assert measured.stats.reads > 0


def test_warmup_shrinks_exec_time_window():
    full = build(warmup_fraction=0.0).run()
    measured = build(warmup_fraction=0.5).run()
    assert measured.exec_time < full.exec_time


def test_warmup_lowers_compulsory_miss_share():
    """After warmup the caches are trained, so the memory-supplied
    share of ring reads drops."""
    cold = build(warmup_fraction=0.0).run()
    warm = build(warmup_fraction=0.6).run()
    assert (
        warm.stats.supplier_found_fraction
        >= cold.stats.supplier_found_fraction
    )


def test_invalid_warmup_fraction_rejected():
    workload = generate_workload(profile())
    machine = default_machine(algorithm="lazy", num_cmps=4,
                              cores_per_cmp=1)
    with pytest.raises(ValueError):
        RingMultiprocessor(
            machine, build_algorithm("lazy"), workload,
            warmup_fraction=1.0,
        )


# ----------------------------------------------------------------------
# Prewarm (initial cache contents)


def test_prewarm_installs_exclusive_lines():
    system = build(prewarm_fraction=1.0)
    workload = system.workload
    assert workload.prewarm
    for core, lines in zip(system.cores, workload.prewarm):
        cache = system.nodes[core.cmp_id].caches[core.local_id]
        resident = [a for a in lines if a in cache]
        # Set conflicts may evict a few prewarmed lines; the bulk must
        # be resident, and everything resident must be Exclusive.
        assert len(resident) > 0.85 * len(lines)
        for address in resident:
            assert cache.state_of(address) is LineState.E


def test_prewarm_trains_predictors():
    workload = generate_workload(profile(prewarm_fraction=1.0))
    machine = default_machine(
        algorithm="subset",
        num_cmps=4,
        cores_per_cmp=1,
        cache=CacheConfig(num_lines=256, associativity=8),
    )
    system = RingMultiprocessor(
        machine, build_algorithm("subset"), workload
    )
    predictor = system.nodes[0].predictor
    hits = sum(
        1 for address in workload.prewarm[0] if address in predictor
    )
    assert hits > 0


def test_prewarm_eliminates_private_cold_misses():
    cold = build(prewarm_fraction=0.0).run()
    warm = build(prewarm_fraction=1.0).run()
    # Private lines now hit; ring reads shrink to shared + cold pools.
    assert warm.stats.read_ring_transactions < (
        cold.stats.read_ring_transactions
    )


def test_prewarm_hot_lines_survive_capacity():
    """The prewarm list is installed hottest-last (MRU), so when the
    pool exceeds the cache, the hot head survives."""
    workload = generate_workload(
        SharingProfile(
            name="overflow",
            num_cores=4,
            cores_per_cmp=1,
            accesses_per_core=10,
            p_shared=0.0,
            p_cold=0.0,
            private_lines=512,  # 2x the 256-line cache
            prewarm_fraction=1.0,
            seed=3,
        )
    )
    machine = default_machine(
        algorithm="lazy",
        num_cmps=4,
        cores_per_cmp=1,
        cache=CacheConfig(num_lines=256, associativity=8),
    )
    system = RingMultiprocessor(machine, build_algorithm("lazy"),
                                workload)
    cache = system.nodes[0].caches[0]
    hot = workload.prewarm[0][:32]
    resident = sum(1 for address in hot if address in cache)
    assert resident > 24  # the hot head is (almost) fully resident


def test_prewarm_mismatched_length_rejected():
    workload = generate_workload(profile(prewarm_fraction=0.5))
    workload.prewarm.pop()
    with pytest.raises(ValueError):
        workload.validate()


# ----------------------------------------------------------------------
# Prewarm fast path and memo (referenced from
# RingMultiprocessor._apply_prewarm's docstring)


def overflow_profile(seed=11):
    """Private pool at 2x cache capacity, so prewarm exercises the
    conflict-eviction branch as well as plain fills."""
    return SharingProfile(
        name="overflow",
        num_cores=4,
        cores_per_cmp=1,
        accesses_per_core=100,
        p_shared=0.2,
        p_cold=0.05,
        shared_lines=32,
        private_lines=512,
        prewarm_fraction=1.0,
        seed=seed,
    )


def build_for(algorithm, workload):
    machine = default_machine(
        algorithm=algorithm,
        num_cmps=4,
        cores_per_cmp=1,
        cache=CacheConfig(num_lines=256, associativity=8),
    )
    return RingMultiprocessor(
        machine, build_algorithm(algorithm), workload
    )


def machine_state(system):
    """Everything prewarm touches, in comparable form: per-core cache
    contents in LRU order, fill/eviction counters, the line registry,
    and per-node predictor state."""
    caches = []
    for core in system.cores:
        cache = system.nodes[core.cmp_id].caches[core.local_id]
        caches.append(
            (
                [
                    [
                        (address, line.state, line.version)
                        for address, line in cache_set.items()
                    ]
                    for cache_set in cache._sets
                ],
                cache.fills,
                cache.evictions,
                cache.dirty_evictions,
            )
        )
    predictors = [
        node.predictor.prewarm_snapshot() for node in system.nodes
    ]
    return (
        caches,
        dict(system._supplier_of),
        dict(system._holder_count),
        predictors,
    )


def test_prewarm_fast_path_matches_generic_fill():
    """The inlined prewarm walk must be observably identical to
    filling every line through the generic (callback-driven)
    ``cache.fill`` path."""
    workload = generate_workload(overflow_profile())
    assert workload.prewarm
    fast = build_for("subset", workload)

    bare = dataclasses.replace(workload, prewarm=[])
    generic = build_for("subset", bare)
    for core, lines in zip(generic.cores, workload.prewarm):
        cache = generic.nodes[core.cmp_id].caches[core.local_id]
        for address in reversed(lines):
            cache.fill(address, LineState.E, 0)

    assert machine_state(fast) == machine_state(generic)
    # The overflow pool must actually have exercised evictions, or the
    # comparison above proves less than it claims.
    assert any(state[2] > 0 for state in machine_state(fast)[0])


@pytest.mark.parametrize("algorithm", ["oracle", "subset", "superset_con"])
def test_prewarm_memo_matches_full_walk(algorithm, monkeypatch):
    """Restoring a recorded prewarm memo must leave the machine in
    exactly the state a full walk produces, and the run built on top
    of it must be bit-identical."""
    system_module._PREWARM_MEMOS.clear()
    workload = generate_workload(overflow_profile())

    restored = []
    original = WarmupController._restore_prewarm

    def spy(self, memo):
        restored.append(memo)
        return original(self, memo)

    monkeypatch.setattr(WarmupController, "_restore_prewarm", spy)

    first = build_for(algorithm, workload)  # records the memo
    assert not restored
    assert len(system_module._PREWARM_MEMOS) == 1

    memoized = build_for(algorithm, workload)  # must hit the memo
    assert len(restored) == 1

    # An equal-but-distinct trace object misses the identity-keyed
    # memo and takes the full walk again: the reference state.
    walked = build_for(algorithm, generate_workload(overflow_profile()))
    assert len(restored) == 1

    assert machine_state(memoized) == machine_state(walked)
    assert machine_state(memoized) == machine_state(first)
    assert memoized.run().summary() == walked.run().summary()


def test_prewarm_memo_skipped_for_exact_predictor():
    """Exact's conflict downgrades let predictor training feed back
    into cache state, so its prewarm is never memoized."""
    system_module._PREWARM_MEMOS.clear()
    workload = generate_workload(overflow_profile())
    build_for("exact", workload)
    assert not system_module._PREWARM_MEMOS


def test_prewarm_memo_rekeyed_on_source_descriptor(monkeypatch):
    """Two *distinct* sources with equal descriptors (same profile)
    share one memo: the content-addressed key replaces the old
    object-identity key whenever a source publishes a descriptor."""
    from repro.workloads.source import SyntheticSource

    system_module._PREWARM_MEMOS.clear()

    restored = []
    original = WarmupController._restore_prewarm

    def spy(self, memo):
        restored.append(memo)
        return original(self, memo)

    monkeypatch.setattr(WarmupController, "_restore_prewarm", spy)

    first = build_for("subset", SyntheticSource(overflow_profile()))
    assert not restored
    assert len(system_module._PREWARM_MEMOS) == 1
    (key,) = system_module._PREWARM_MEMOS
    assert key[0] == "desc"

    # A brand-new source object, equal profile: memo hit.
    second = build_for("subset", SyntheticSource(overflow_profile()))
    assert len(restored) == 1
    assert machine_state(first) == machine_state(second)

    # A different profile (other seed) misses and records a new memo.
    build_for("subset", SyntheticSource(overflow_profile(seed=12)))
    assert len(restored) == 1
    assert len(system_module._PREWARM_MEMOS) == 2


def test_prewarm_memo_shared_across_file_and_memory(tmp_path, monkeypatch):
    """A file replay of a saved trace hits... a fresh memo keyed on
    the file's content hash, and a second replay of the same file
    (new source object, new scan) hits that memo."""
    from repro.workloads.io import save_trace
    from repro.workloads.source import FileReplaySource

    system_module._PREWARM_MEMOS.clear()
    workload = generate_workload(overflow_profile())
    path = tmp_path / "overflow.jsonl"
    save_trace(workload, path)

    restored = []
    original = WarmupController._restore_prewarm

    def spy(self, memo):
        restored.append(memo)
        return original(self, memo)

    monkeypatch.setattr(WarmupController, "_restore_prewarm", spy)

    direct = build_for("subset", workload)
    first = build_for("subset", FileReplaySource(path))
    assert not restored  # identity key vs content key: distinct memos
    second = build_for("subset", FileReplaySource(path))
    assert len(restored) == 1
    assert machine_state(first) == machine_state(second)
    assert machine_state(first) == machine_state(direct)

"""Cross-validation: the discrete-event simulator against the
closed-form models of Tables 1 and 3.

For a controlled experiment - one read per supplier distance, supplier
planted at every position 1..N-1 in turn - the simulator's averaged
latency, snoop count and message count must equal the analytical
expectations exactly (the analytical model assumes a uniform supplier
distribution, which this experiment realizes by construction).
"""

from __future__ import annotations

import pytest

from repro.config import CacheConfig, default_machine
from repro.coherence.states import LineState
from repro.core.algorithms import build_algorithm
from repro.core.analytical import (
    AnalyticalParams,
    expected_latency,
    expected_messages,
    expected_snoops,
)
from repro.sim.system import RingMultiprocessor
from repro.workloads.trace import Access, WorkloadTrace

N = 8
LINE = 0x890  # maps to ring 0; home node 0x890 % 8 = 0


def run_at_distance(algorithm_name: str, distance: int):
    """One unloaded read whose supplier sits ``distance`` hops away."""
    traces = [[] for _ in range(N)]
    traces[0] = [Access(address=LINE, is_write=False, think_time=0)]
    workload = WorkloadTrace(name="probe", cores_per_cmp=1, traces=traces)
    machine = default_machine(
        algorithm=algorithm_name,
        cores_per_cmp=1,
        cache=CacheConfig(num_lines=256, associativity=8),
    )
    system = RingMultiprocessor(
        machine, build_algorithm(algorithm_name), workload
    )
    system.nodes[distance].caches[0].fill(LINE, LineState.E)
    result = system.run()
    stats = result.stats
    return {
        # Time from issue until the supplier's snoop completes: the
        # analytical latency definition.
        "latency": stats.mean_supplier_latency,
        "snoops": stats.read_snoops,
        "messages": stats.read_ring_crossings / N,
    }


def average_over_distances(algorithm_name: str):
    rows = [
        run_at_distance(algorithm_name, d) for d in range(1, N)
    ]
    return {
        key: sum(row[key] for row in rows) / len(rows)
        for key in rows[0]
    }


def params(**kwargs):
    return AnalyticalParams(
        num_nodes=N,
        hop_latency=39,
        snoop_time=55,
        predictor_latency=2,
        p_supplier=1.0,
        **kwargs,
    )


@pytest.mark.parametrize(
    "algorithm,pred_latency",
    [
        ("lazy", 0),
        ("eager", 0),
        ("oracle", 0),
        ("subset", 2),
        ("superset_con", 2),
        ("superset_agg", 2),
        ("exact", 2),
    ],
)
def test_simulator_matches_analytical(algorithm, pred_latency):
    measured = average_over_distances(algorithm)
    p = AnalyticalParams(
        num_nodes=N,
        hop_latency=39,
        snoop_time=55,
        predictor_latency=pred_latency,
        p_supplier=1.0,
        fn=0.0,
        fp=0.0,
    )
    # Latency until the supplier's snoop completes.
    assert measured["latency"] == pytest.approx(
        expected_latency(algorithm, p), rel=1e-9
    ), "latency"
    # Snoop operations per request.
    assert measured["snoops"] == pytest.approx(
        expected_snoops(algorithm, p), rel=1e-9
    ), "snoops"
    # Ring messages per request (crossings / N).
    assert measured["messages"] == pytest.approx(
        expected_messages(algorithm, p), rel=1e-9
    ), "messages"


def test_lazy_vs_eager_latency_gap_matches_table1():
    lazy = average_over_distances("lazy")["latency"]
    eager = average_over_distances("eager")["latency"]
    p = params()
    assert lazy - eager == pytest.approx(
        expected_latency("lazy", p) - expected_latency("eager", p)
    )

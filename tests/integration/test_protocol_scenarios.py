"""Scenario-level protocol tests: multi-step sequences exercising the
SL/SG/T state machine across CMPs, evictions with write-back, and the
mastership rules of Section 2.2."""

from __future__ import annotations

import pytest

from repro.config import CacheConfig, default_machine
from repro.coherence.states import LineState
from repro.core.algorithms import build_algorithm
from repro.sim.system import RingMultiprocessor
from repro.workloads.trace import Access, WorkloadTrace

N = 4
LINE = 0x1001  # home node 1


def build_system(accesses_by_core, cores_per_cmp=1, cache_lines=64):
    traces = [[] for _ in range(N * cores_per_cmp)]
    for core, accesses in accesses_by_core.items():
        traces[core] = [
            Access(address=a, is_write=w, think_time=t)
            for (a, w, t) in accesses
        ]
    workload = WorkloadTrace(
        name="scenario", cores_per_cmp=cores_per_cmp, traces=traces
    )
    machine = default_machine(
        algorithm="lazy",
        num_cmps=N,
        cores_per_cmp=cores_per_cmp,
        cache=CacheConfig(num_lines=cache_lines, associativity=4),
        track_versions=True,
        check_invariants=True,
    )
    return RingMultiprocessor(
        machine, build_algorithm("lazy"), workload
    )


def state_of(system, cmp_id, address, core=0):
    return system.nodes[cmp_id].caches[core].state_of(address)


# ----------------------------------------------------------------------
# Read chains: mastership propagation


def test_read_chain_single_global_master():
    """Three CMPs read in sequence: the first becomes the global
    master (E then SG); later readers take SL in their own CMPs."""
    system = build_system(
        {
            0: [(LINE, False, 0)],
            1: [(LINE, False, 4000)],
            2: [(LINE, False, 8000)],
        }
    )
    system.run()
    assert state_of(system, 0, LINE) is LineState.SG
    assert state_of(system, 1, LINE) is LineState.SL
    assert state_of(system, 2, LINE) is LineState.SL


def test_local_read_after_remote_fill():
    """Within a CMP, the core that fetched the line stays local
    master; its sibling reads get plain S."""
    system = build_system(
        {
            0: [(LINE, False, 0)],   # CMP 0, core 0
            1: [(LINE, False, 4000)],  # CMP 0, core 1: local hit
        },
        cores_per_cmp=2,
    )
    result = system.run()
    assert result.stats.read_hits_local_master == 1
    assert result.stats.read_ring_transactions == 1
    assert system.nodes[0].caches[0].state_of(LINE) is LineState.SG
    assert system.nodes[0].caches[1].state_of(LINE) is LineState.S


def test_dirty_line_shared_through_tagged():
    """Writer -> remote reader -> another remote reader: D becomes T
    at first supply and stays T; readers hold SL."""
    system = build_system(
        {
            0: [(LINE, True, 0)],
            1: [(LINE, False, 5000)],
            2: [(LINE, False, 10000)],
        }
    )
    result = system.run()
    assert state_of(system, 0, LINE) is LineState.T
    assert state_of(system, 1, LINE) is LineState.SL
    assert state_of(system, 2, LINE) is LineState.SL
    assert result.stats.reads_supplied_by_cache == 2
    assert result.stats.reads_supplied_by_memory == 0


def test_tagged_eviction_writes_back():
    """Evicting a T line must write the dirty data back, so a later
    read is served by memory with the written value."""
    # Addresses mapping to the same cache set to force the eviction:
    # with 64 lines / 4-way there are 16 sets; stride 16 collides.
    conflicting = [LINE + 16 * i for i in range(1, 5)]
    accesses_writer = [(LINE, True, 0)]
    accesses_reader = [(LINE, False, 4000)]
    # After supplying (T), the writer's core fills 4 more lines into
    # the same set, evicting LINE.
    accesses_writer += [(a, False, 5000) for a in conflicting]
    final_reader = [(LINE, False, 40000)]
    system = build_system(
        {0: accesses_writer, 1: accesses_reader, 2: final_reader}
    )
    result = system.run()
    assert result.stats.version_violations == 0
    assert result.stats.writebacks >= 1
    assert system.memory.version_of(LINE) > 0


def test_read_with_only_plain_s_copies_goes_to_memory():
    """Plain S copies cannot supply: when the global master is gone,
    the request falls through to memory and the requester becomes the
    new global master (SG)."""
    system = build_system({0: [(LINE, False, 0)]})
    # Plant an S copy with no master anywhere.
    system.nodes[2].caches[0].fill(LINE, LineState.S)
    result = system.run()
    assert result.stats.reads_supplied_by_memory == 1
    assert state_of(system, 0, LINE) is LineState.SG
    assert state_of(system, 2, LINE) is LineState.S


def test_upgrade_from_sl_claims_ownership():
    """A reader holding SL that writes must invalidate the rest of
    the sharers, including the old global master."""
    system = build_system(
        {
            0: [(LINE, False, 0)],            # becomes SG
            1: [(LINE, False, 5000),          # becomes SL
                (LINE, True, 5000)],          # upgrade: invalidates SG
        }
    )
    result = system.run()
    assert state_of(system, 0, LINE) is LineState.I
    assert state_of(system, 1, LINE) is LineState.D
    assert result.stats.version_violations == 0


def test_silent_store_to_exclusive_keeps_ring_quiet():
    system = build_system(
        {0: [(LINE, False, 0), (LINE, True, 3000)]}
    )
    result = system.run()
    # Read miss -> E; write upgrades silently.
    assert result.stats.write_ring_transactions == 0
    assert state_of(system, 0, LINE) is LineState.D


def test_migratory_round_trip_versions():
    """Each CMP increments the line in turn; every reader must see
    its predecessor's value (version monotonicity end-to-end)."""
    accesses = {}
    for cmp in range(N):
        accesses[cmp] = [
            (LINE, False, 3000 + 9000 * cmp),
            (LINE, True, 10),
        ]
    system = build_system(accesses)
    result = system.run()
    assert result.stats.version_violations == 0
    owners = [
        cmp
        for cmp in range(N)
        if state_of(system, cmp, LINE)
        in (LineState.D, LineState.T)
    ]
    assert len(owners) == 1

"""Integration tests for streaming file replay through the full stack.

The contract under test: a ``file:`` workload source feeds the cores
lazy iterators and is *never* materialized by the simulator, yet the
run is bit-identical to the in-memory generation it was saved from.
"""

from __future__ import annotations

import pytest

from repro.config import CacheConfig, default_machine
from repro.core.algorithms import build_algorithm
from repro.harness.parallel import (
    RunSpec,
    _cached_source,
    execute_spec,
    run_specs,
)
from repro.harness.result_cache import ResultCache
from repro.sim.system import RingMultiprocessor
from repro.workloads.io import save_trace
from repro.workloads.source import FileReplaySource, resolve_source
from repro.workloads.synthetic import SharingProfile, generate_workload


def profile(seed=5):
    return SharingProfile(
        name="replay",
        num_cores=8,
        cores_per_cmp=1,
        accesses_per_core=150,
        p_shared=0.4,
        shared_lines=48,
        private_lines=96,
        prewarm_fraction=0.5,
        seed=seed,
    )


def machine_for(algorithm):
    return default_machine(
        algorithm=algorithm,
        num_cmps=8,
        cores_per_cmp=1,
        cache=CacheConfig(num_lines=256, associativity=8),
    )


@pytest.fixture
def trace_file(tmp_path):
    workload = generate_workload(profile())
    path = tmp_path / "replay.jsonl"
    save_trace(workload, path, chunk_size=32)
    return workload, path


@pytest.mark.parametrize("algorithm", ["lazy", "subset", "exact"])
def test_replay_bit_identical_to_memory(trace_file, algorithm):
    workload, path = trace_file
    direct = RingMultiprocessor(
        machine_for(algorithm),
        build_algorithm(algorithm),
        workload,
        warmup_fraction=0.35,
    ).run()
    replayed = RingMultiprocessor(
        machine_for(algorithm),
        build_algorithm(algorithm),
        FileReplaySource(path),
        warmup_fraction=0.35,
    ).run()
    assert replayed.summary() == direct.summary()
    assert replayed.exec_time == direct.exec_time


def test_streaming_run_never_materializes(trace_file, monkeypatch):
    _workload, path = trace_file

    def boom(self):
        raise AssertionError(
            "streaming replay must not materialize the trace"
        )

    monkeypatch.setattr(FileReplaySource, "materialize", boom)
    source = FileReplaySource(path)
    result = RingMultiprocessor(
        machine_for("lazy"),
        build_algorithm("lazy"),
        source,
        warmup_fraction=0.35,
    ).run()
    assert result.exec_time > 0


def test_run_specs_accepts_file_spec(trace_file, tmp_path):
    workload, path = trace_file
    _cached_source.cache_clear()
    spec = RunSpec(
        "lazy",
        "file:%s" % path,
        warmup_fraction=0.35,
        config=machine_for("lazy"),
    )
    direct = RingMultiprocessor(
        machine_for("lazy"),
        build_algorithm("lazy"),
        workload,
        warmup_fraction=0.35,
    ).run()
    cache = ResultCache(root=tmp_path / "cache")
    (result,) = run_specs([spec], jobs=1, cache=cache)
    assert result.summary() == direct.summary()
    assert cache.stores == 1
    # A warm-cache rerun serves the result without simulating.
    (again,) = run_specs([spec], jobs=1, cache=cache)
    assert cache.hits == 1
    assert again.summary() == result.summary()
    _cached_source.cache_clear()


def test_cache_key_is_content_addressed(trace_file, tmp_path):
    """Two paths holding the same bytes share one cache key; changing
    the bytes changes the key even at the same path."""
    _workload, path = trace_file
    _cached_source.cache_clear()
    base_key = RunSpec(
        "lazy", "file:%s" % path, warmup_fraction=0.35
    ).cache_key()

    copy = tmp_path / "copy.jsonl"
    copy.write_bytes(path.read_bytes())
    copy_key = RunSpec(
        "lazy", "file:%s" % copy, warmup_fraction=0.35
    ).cache_key()
    assert copy_key == base_key

    other = generate_workload(profile(seed=6))
    save_trace(other, copy)
    _cached_source.cache_clear()  # drop the memoized scan of `copy`
    changed_key = RunSpec(
        "lazy", "file:%s" % copy, warmup_fraction=0.35
    ).cache_key()
    assert changed_key != base_key
    _cached_source.cache_clear()


def test_run_spec_shapes_machine_to_trace_geometry(tmp_path):
    """A replayed file brings its own CMP count: a 4-core / 2-per-CMP
    trace must build a 2-CMP default machine, not the paper's 8."""
    _cached_source.cache_clear()
    workload = generate_workload(
        SharingProfile(
            name="small-geometry",
            num_cores=4,
            cores_per_cmp=2,
            accesses_per_core=60,
            p_shared=0.3,
            shared_lines=32,
            private_lines=32,
            seed=3,
        )
    )
    path = tmp_path / "small.jsonl"
    save_trace(workload, path)
    spec = RunSpec("lazy", "file:%s" % path, warmup_fraction=0.0)
    machine = spec.resolve_config(2, 2)
    assert machine.num_cmps == 2
    result = execute_spec(spec)
    assert result.exec_time > 0
    _cached_source.cache_clear()


def test_resolve_source_geometry_without_materializing(trace_file):
    _workload, path = trace_file
    source = resolve_source("file:%s" % path)
    assert source.num_cores == 8
    assert source.cores_per_cmp == 1
    assert source.streaming

"""Integration tests for system internals: the line registry hooks,
version checking plumbing, multi-ring mapping, and rerun protection."""

from __future__ import annotations

import pytest

from repro.config import CacheConfig, default_machine
from repro.coherence.protocol import CoherenceError
from repro.coherence.states import LineState
from repro.core.algorithms import build_algorithm
from repro.sim.system import RingMultiprocessor
from repro.workloads.trace import Access, WorkloadTrace


def empty_system(num_cmps=4, cores_per_cmp=2, **overrides):
    traces = [[] for _ in range(num_cmps * cores_per_cmp)]
    workload = WorkloadTrace(
        name="empty", cores_per_cmp=cores_per_cmp, traces=traces
    )
    machine = default_machine(
        algorithm="lazy",
        num_cmps=num_cmps,
        cores_per_cmp=cores_per_cmp,
        cache=CacheConfig(num_lines=64, associativity=4),
        **overrides,
    )
    return RingMultiprocessor(machine, build_algorithm("lazy"),
                              workload)


def test_registry_tracks_supplier_moves():
    system = empty_system()
    cache_a = system.nodes[0].caches[0]
    cache_b = system.nodes[2].caches[1]
    cache_a.fill(0x10, LineState.E)
    assert system._find_global_supplier(0x10) == (0, 0)
    assert system._cmp_has_supplier(0, 0x10)
    assert not system._cmp_has_supplier(2, 0x10)
    cache_a.set_state(0x10, LineState.SL)  # supplier lost
    assert system._find_global_supplier(0x10) is None
    cache_b.fill(0x10, LineState.D)
    assert system._find_global_supplier(0x10) == (2, 1)


def test_registry_rejects_second_supplier():
    system = empty_system()
    system.nodes[0].caches[0].fill(0x10, LineState.E)
    with pytest.raises(CoherenceError):
        system.nodes[1].caches[0].fill(0x10, LineState.D)


def test_holder_count_reference_counting():
    system = empty_system()
    system.nodes[0].caches[0].fill(0x20, LineState.S)
    system.nodes[1].caches[0].fill(0x20, LineState.S)
    assert system._any_holder(0x20)
    system.nodes[0].caches[0].invalidate(0x20)
    assert system._any_holder(0x20)
    system.nodes[1].caches[0].invalidate(0x20)
    assert not system._any_holder(0x20)


def test_system_runs_once_only():
    system = empty_system()
    system.run()
    with pytest.raises(RuntimeError):
        system.run()


def test_mismatched_workload_rejected():
    traces = [[] for _ in range(6)]
    workload = WorkloadTrace(name="w", cores_per_cmp=2, traces=traces)
    machine = default_machine(algorithm="lazy", num_cmps=4,
                              cores_per_cmp=2)
    with pytest.raises(ValueError):
        RingMultiprocessor(machine, build_algorithm("lazy"), workload)

    workload = WorkloadTrace(
        name="w", cores_per_cmp=1, traces=[[] for _ in range(4)]
    )
    with pytest.raises(ValueError):
        RingMultiprocessor(machine, build_algorithm("lazy"), workload)


def test_version_checker_flags_stale_data():
    system = empty_system(track_versions=True)
    system._last_completed_write[0x30] = 7
    system._check_version(0x30, obtained=6)
    assert system.stats.version_violations == 1
    system._check_version(0x30, obtained=7)
    assert system.stats.version_violations == 1


def test_version_checker_disabled_by_default():
    system = empty_system()
    system._last_completed_write[0x30] = 7
    system._check_version(0x30, obtained=1)
    assert system.stats.version_violations == 0


def test_ring_assignment_balances_addresses():
    system = empty_system()
    from repro.workloads.synthetic import scramble

    counts = [0, 0]
    for logical in range(2000):
        counts[system.ring.ring_of(scramble(logical))] += 1
    assert abs(counts[0] - counts[1]) < 0.15 * sum(counts)


def test_invariant_checker_runs_on_demand():
    system = empty_system(check_invariants=True)
    system.nodes[0].caches[0].fill(0x40, LineState.T)
    system.nodes[1].caches[0].fill(0x40, LineState.S)
    system._check_line_invariants(0x40)  # compatible: no raise
    # Force an incompatible snapshot bypassing the registry.
    cache = system.nodes[2].caches[0]
    cache._sets[0x40 % cache.config.num_sets][0x40] = type(
        next(iter(system.nodes[0].caches[0].iter_lines()))
    )(address=0x40, state=LineState.D, version=0)
    with pytest.raises(CoherenceError):
        system._check_line_invariants(0x40)

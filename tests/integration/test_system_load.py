"""Integration tests running whole synthetic workloads through the
system under every algorithm, checking coherence invariants, version
correctness (readers always see the latest completed write), and
cross-algorithm metric relationships."""

from __future__ import annotations

import pytest

from repro.config import CacheConfig, default_machine
from repro.coherence.protocol import ProtocolTables
from repro.coherence.states import LineState
from repro.core.algorithms import ALGORITHMS, build_algorithm
from repro.sim.system import RingMultiprocessor
from repro.workloads.synthetic import SharingProfile, generate_workload

ALGORITHM_NAMES = [
    "lazy",
    "eager",
    "oracle",
    "subset",
    "superset_con",
    "superset_agg",
    "superset_hybrid",
    "exact",
]


def stress_profile(seed=7, cores=8, cores_per_cmp=2):
    """A small, very contended workload: lots of sharing and writes,
    which maximizes collisions and state churn."""
    return SharingProfile(
        name="stress",
        num_cores=cores,
        cores_per_cmp=cores_per_cmp,
        accesses_per_core=400,
        p_shared=0.6,
        p_cold=0.05,
        shared_lines=48,
        private_lines=64,
        write_fraction_shared=0.35,
        write_fraction_private=0.4,
        migratory_fraction=0.25,
        think_mean=8.0,
        seed=seed,
    )


def run_system(algorithm_name, profile):
    workload = generate_workload(profile)
    machine = default_machine(
        algorithm=algorithm_name,
        num_cmps=workload.num_cmps,
        cores_per_cmp=workload.cores_per_cmp,
        cache=CacheConfig(num_lines=128, associativity=4),
        track_versions=True,
        check_invariants=True,
    )
    system = RingMultiprocessor(
        machine, build_algorithm(algorithm_name), workload
    )
    return system, system.run()


@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_no_version_violations_under_contention(algorithm):
    _, result = run_system(algorithm, stress_profile())
    assert result.stats.version_violations == 0


@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_final_state_globally_coherent(algorithm):
    system, _ = run_system(algorithm, stress_profile())
    addresses = set()
    for node in system.nodes:
        for cache in node.caches:
            addresses.update(line.address for line in cache.iter_lines())
    for address in addresses:
        snapshot = {}
        for node in system.nodes:
            for core_index, cache in enumerate(node.caches):
                state = cache.state_of(address)
                if state != LineState.I:
                    snapshot[(node.cmp_id, core_index)] = state
        ProtocolTables.check_line(snapshot, address)


@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_registry_consistent_with_caches(algorithm):
    """The O(1) supplier/holder indexes must agree with a full scan."""
    system, _ = run_system(algorithm, stress_profile())
    from repro.coherence.states import SUPPLIER_STATES

    scan_suppliers = {}
    scan_holders = {}
    for node in system.nodes:
        for core_index, cache in enumerate(node.caches):
            for line in cache.iter_lines():
                scan_holders[line.address] = (
                    scan_holders.get(line.address, 0) + 1
                )
                if line.state in SUPPLIER_STATES:
                    assert line.address not in scan_suppliers
                    scan_suppliers[line.address] = (
                        node.cmp_id,
                        core_index,
                    )
    assert system._supplier_of == scan_suppliers
    assert {
        a: c for a, c in system._holder_count.items() if c > 0
    } == scan_holders


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_determinism_across_runs(seed):
    _, a = run_system("superset_agg", stress_profile(seed=seed))
    _, b = run_system("superset_agg", stress_profile(seed=seed))
    assert a.exec_time == b.exec_time
    assert a.stats.read_snoops == b.stats.read_snoops
    assert a.total_energy == b.total_energy


def test_all_cores_complete():
    system, result = run_system("lazy", stress_profile())
    assert all(t >= 0 for t in result.stats.core_finish_times)
    assert result.exec_time == max(result.stats.core_finish_times)


def test_eager_always_snoops_everything():
    _, result = run_system("eager", stress_profile())
    n = 4  # CMPs
    # Non-squashed read requests snoop all N-1 nodes.
    assert result.stats.snoops_per_read_request == pytest.approx(
        n - 1, abs=0.35  # squashed walks dilute the average slightly
    )


def test_oracle_never_worse_than_eager():
    _, eager = run_system("eager", stress_profile())
    _, oracle = run_system("oracle", stress_profile())
    assert oracle.stats.read_snoops < eager.stats.read_snoops
    assert oracle.exec_time <= eager.exec_time * 1.05


def test_lazy_slowest_superset_agg_between():
    _, lazy = run_system("lazy", stress_profile())
    _, agg = run_system("superset_agg", stress_profile())
    assert agg.exec_time <= lazy.exec_time


def test_superset_con_single_message():
    _, con = run_system("superset_con", stress_profile())
    _, lazy = run_system("lazy", stress_profile())
    # Con never splits read messages: crossings track Lazy's closely.
    ratio = (
        con.stats.read_ring_crossings / lazy.stats.read_ring_crossings
    )
    assert 0.9 < ratio < 1.1


def test_subset_never_misses_supplier():
    """With a Subset predictor, a false negative must degrade to
    Forward-Then-Snoop, never skip the supplier: every ring read that
    a supplier could serve is served by it."""
    system, result = run_system("subset", stress_profile())
    assert result.stats.version_violations == 0
    # Cache-supplied reads exist despite predictor conflict drops.
    assert result.stats.reads_supplied_by_cache > 0


def test_hybrid_runs_and_tracks_modes():
    workload = generate_workload(stress_profile())
    machine = default_machine(
        algorithm="superset_hybrid",
        num_cmps=workload.num_cmps,
        cores_per_cmp=workload.cores_per_cmp,
        cache=CacheConfig(num_lines=128, associativity=4),
    )
    algorithm = build_algorithm("superset_hybrid")
    toggle = {"pressed": False}
    algorithm.set_energy_pressure(lambda: toggle["pressed"])
    system = RingMultiprocessor(machine, algorithm, workload)
    result = system.run()
    assert algorithm.aggressive_choices > 0
    assert result.stats.version_violations == 0


def test_mshr_queues_same_cmp_requests():
    _, result = run_system("lazy", stress_profile(cores=8,
                                                  cores_per_cmp=4))
    assert result.stats.mshr_queued > 0


def test_collisions_squash_and_retry():
    _, result = run_system("lazy", stress_profile())
    assert result.stats.squashes > 0
    assert result.stats.retries >= result.stats.squashes

"""Serial-vs-parallel equivalence of the harness.

The whole point of the parallel layer is that it changes *wall-clock
time only*: a pool run must return bit-identical
``SimulationResult``s to an in-process serial run.  This suite runs
the paper's full MAIN_ALGORITHMS x WORKLOADS matrix at small scale
both ways and compares every observable field.
"""

from __future__ import annotations

from repro.harness.experiments import MAIN_ALGORITHMS, WORKLOADS
from repro.harness.parallel import RunSpec, run_specs
from repro.harness.result_cache import ResultCache

#: Small but non-degenerate: every algorithm still issues ring
#: transactions on every workload at this trace length.
SCALE = 50

FULL_MATRIX = [
    RunSpec(
        algorithm,
        workload,
        accesses_per_core=SCALE,
        warmup_fraction=0.35,
    )
    for workload in WORKLOADS
    for algorithm in MAIN_ALGORITHMS
]


def assert_results_identical(serial, parallel):
    assert len(serial) == len(parallel)
    for expected, actual in zip(serial, parallel):
        label = (expected.algorithm, expected.workload)
        assert actual.algorithm == expected.algorithm, label
        assert actual.workload == expected.workload, label
        assert actual.exec_time == expected.exec_time, label
        assert actual.events == expected.events, label
        assert actual.stats == expected.stats, label
        assert actual.energy == expected.energy, label
        assert actual.config == expected.config, label


def test_full_matrix_parallel_matches_serial():
    serial = run_specs(FULL_MATRIX, jobs=1)
    parallel = run_specs(FULL_MATRIX, jobs=4)
    assert_results_identical(serial, parallel)


def test_parallel_results_cache_and_replay(tmp_path):
    """A parallel run populates the cache; a later serial run at the
    same points simulates nothing and reproduces the results."""
    subset = [
        spec for spec in FULL_MATRIX
        if spec.workload == "specjbb" and spec.algorithm in (
            "lazy", "eager", "subset"
        )
    ]
    cache = ResultCache(root=tmp_path / "cache")
    parallel = run_specs(subset, jobs=2, cache=cache)
    assert cache.stores == len(subset)

    replay_cache = ResultCache(root=tmp_path / "cache")
    replayed = run_specs(subset, jobs=1, cache=replay_cache)
    assert replay_cache.misses == 0
    assert replay_cache.hits == len(subset)
    assert_results_identical(parallel, replayed)

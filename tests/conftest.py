"""Pytest configuration for the test suite.

The suite is organized as:

* ``tests/unit`` - one module per library module, no simulation runs
  beyond microscopic ones.
* ``tests/property`` - hypothesis-driven invariant checks (cache vs a
  reference model, predictor guarantees).
* ``tests/integration`` - whole-system runs: single hand-built
  transactions with exact cycle assertions, contended workloads with
  coherence/version checking, calibration contracts, and
  cross-validation of the simulator against the analytical models.

One piece of global state is shared: the persistent result cache is
redirected away from the user's real ``~/.cache/flexsnoop`` into a
per-session temporary directory, so tests that exercise the cached
CLI/harness paths never read or pollute real cached results.
"""

from __future__ import annotations

import pytest

from repro.harness.result_cache import CACHE_DIR_ENV


@pytest.fixture(scope="session")
def _session_cache_root(tmp_path_factory):
    return tmp_path_factory.mktemp("flexsnoop-cache")


@pytest.fixture(autouse=True)
def _isolated_result_cache(_session_cache_root, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(_session_cache_root))

"""Pytest configuration for the test suite.

The suite is organized as:

* ``tests/unit`` - one module per library module, no simulation runs
  beyond microscopic ones.
* ``tests/property`` - hypothesis-driven invariant checks (cache vs a
  reference model, predictor guarantees).
* ``tests/integration`` - whole-system runs: single hand-built
  transactions with exact cycle assertions, contended workloads with
  coherence/version checking, calibration contracts, and
  cross-validation of the simulator against the analytical models.

Individual test modules build their own fixtures; nothing needs to be
shared globally.
"""

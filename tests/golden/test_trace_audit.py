"""Audit-mode golden tests: tracing observes without perturbing, and
the lifecycle validators hold over the whole golden matrix.

Each golden cell is re-run with the full observability stack on
(event tracing + ``check_invariants``) and must (a) produce a trace
the :class:`~repro.obs.audit.TraceAuditor` finds zero violations in,
and (b) produce the *bit-identical* summary pinned in
``summaries.json`` - proving the trace layer is a pure observer.

A deliberately corrupted trace must be flagged, so a green audit
means the validators actually bite.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.audit import TraceAuditor
from repro.obs.runner import run_traced
from repro.obs.trace import EventType

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "summaries.json")

#: Accesses per core the golden cells were captured at.
GOLDEN_SCALE = 200

with open(GOLDEN_PATH, "r", encoding="utf-8") as _handle:
    GOLDEN_CELLS = json.load(_handle)


def _cell_id(cell) -> str:
    return "%s-%s-warmup%s" % (
        cell["algorithm"],
        cell["workload"],
        cell["warmup_fraction"],
    )


def _run_cell(cell):
    return run_traced(
        cell["algorithm"],
        cell["workload"],
        accesses_per_core=GOLDEN_SCALE,
        seed=0,
        warmup_fraction=cell["warmup_fraction"],
        check_invariants=True,
    )


@pytest.mark.parametrize("cell", GOLDEN_CELLS, ids=_cell_id)
def test_traced_audited_run_is_clean_and_result_neutral(cell):
    traced = _run_cell(cell)
    assert traced.events, "tracing produced no events"
    auditor = TraceAuditor(num_cmps=traced.meta["num_cmps"])
    violations = auditor.audit(traced.events)
    assert violations == [], "\n".join(str(v) for v in violations)
    # Tracing + invariant checking changed nothing observable.
    assert traced.summary() == cell["summary"]


def test_auditor_flags_dropped_retirements():
    traced = run_traced(
        "lazy", "specjbb", accesses_per_core=GOLDEN_SCALE, seed=0
    )
    corrupted = [
        event
        for event in traced.events
        if event.type is not EventType.RETIRE
    ]
    violations = TraceAuditor(
        num_cmps=traced.meta["num_cmps"]
    ).audit(corrupted)
    assert violations
    assert all(v.rule == "lifecycle" for v in violations)


def test_auditor_flags_forged_prediction():
    traced = run_traced(
        "subset", "specjbb", accesses_per_core=GOLDEN_SCALE, seed=0
    )
    events = list(traced.events)
    index = next(
        i
        for i, event in enumerate(events)
        if event.type is EventType.PREDICTOR
        and not event.data["prediction"]
        and not event.data["truth"]
    )
    forged = events[index]._replace(
        data={**events[index].data, "prediction": True}
    )
    events[index] = forged
    violations = TraceAuditor(
        num_cmps=traced.meta["num_cmps"]
    ).audit(events)
    assert any(
        v.rule == "predictor" and "false positive" in v.message
        for v in violations
    )

"""Golden equivalence: file replay is bit-identical to generation.

The workload-source refactor's acceptance criterion: saving a
workload to a ``flexsnoop-trace`` file and replaying it through the
streaming ``file:`` source must reproduce *every* summary statistic
of the in-memory run, for every algorithm - the streaming feed
changes how accesses reach the cores, never what they are.

One trace file is saved per workload (module-scoped) and every
algorithm cell replays it; the in-memory reference runs through the
identical ``RunSpec`` path, so the only varying factor is the source.
"""

from __future__ import annotations

import pytest

from repro.harness.parallel import RunSpec, _cached_source, execute_spec
from repro.workloads.io import save_trace
from repro.workloads.source import resolve_source

#: Accesses per core for the equivalence matrix (matches the golden
#: capture scale of test_golden_equivalence.py).
GOLDEN_SCALE = 200

ALGORITHMS = (
    "lazy",
    "eager",
    "oracle",
    "subset",
    "superset_con",
    "superset_agg",
    "exact",
)

#: (workload, algorithms) cells: the full algorithm matrix on the
#: multi-core SPLASH-2 mix plus one single-core-per-CMP commercial
#: profile to cover the other geometry.
MATRIX = [
    ("splash2", ALGORITHMS),
    ("specjbb", ("lazy", "superset_agg")),
]


@pytest.fixture(scope="module")
def trace_files(tmp_path_factory):
    root = tmp_path_factory.mktemp("golden-replay")
    files = {}
    for workload, _algorithms in MATRIX:
        trace = resolve_source(
            workload, accesses_per_core=GOLDEN_SCALE, seed=0
        ).materialize()
        path = root / ("%s.jsonl" % workload)
        save_trace(trace, path)
        files[workload] = str(path)
    return files


@pytest.mark.parametrize(
    "workload, algorithm",
    [
        (workload, algorithm)
        for workload, algorithms in MATRIX
        for algorithm in algorithms
    ],
)
def test_file_replay_matches_generation(
    trace_files, workload, algorithm
):
    _cached_source.cache_clear()
    direct = execute_spec(
        RunSpec(
            algorithm=algorithm,
            workload=workload,
            accesses_per_core=GOLDEN_SCALE,
            seed=0,
            warmup_fraction=0.35,
        )
    )
    replayed = execute_spec(
        RunSpec(
            algorithm=algorithm,
            workload="file:%s" % trace_files[workload],
            warmup_fraction=0.35,
        )
    )
    assert replayed.summary() == direct.summary()
    assert replayed.exec_time == direct.exec_time
    assert replayed.stats.summary() == direct.stats.summary()
    _cached_source.cache_clear()

"""28-cell equivalence of the legacy algorithms under the decision seam.

The DecisionPolicy refactor replaced the per-hop ``choose(prediction)``
callback with hoisted decision tables in both array cores.  This matrix
pins the refactor's central claim cell by cell: all seven paper
algorithms, on both array cores, at both warmup settings (7 x 2 x 2 =
28 cells), produce summaries bit-identical to the object core running
the identical scenario.

The two post-paper policies ride the same seam and get the stronger
check: their declared counted outputs (``aggressive_choices`` /
``critical_choices``) must match the object core's Python-side tallies
exactly on both array cores.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.config import default_machine
from repro.core.algorithms import build_algorithm
from repro.sim.jit import JitRingMultiprocessor
from repro.sim.soa import SoaRingMultiprocessor
from repro.sim.system import RingMultiprocessor
from repro.workloads.source import SyntheticSource
from repro.workloads.synthetic import SharingProfile

LEGACY_ALGORITHMS = (
    "lazy",
    "eager",
    "oracle",
    "subset",
    "superset_con",
    "superset_agg",
    "exact",
)

ARRAY_CORES = {
    "soa": SoaRingMultiprocessor,
    "jit": JitRingMultiprocessor,
}

WARMUPS = (0.0, 0.3)

PROFILE = SharingProfile(
    name="seam",
    num_cores=8,
    cores_per_cmp=2,
    accesses_per_core=120,
    seed=7,
)


def _machine(algorithm: str):
    return default_machine(
        algorithm=algorithm, cores_per_cmp=2, num_cmps=4
    )


def _run(core_cls, algorithm_name: str, warmup: float):
    algorithm = build_algorithm(algorithm_name)
    result = core_cls(
        _machine(algorithm_name),
        algorithm,
        SyntheticSource(PROFILE),
        warmup_fraction=warmup,
    ).run()
    return result, algorithm


#: Object-core baselines, computed once per (algorithm, warmup).
_BASELINES: Dict[Tuple[str, float], dict] = {}


def _baseline_summary(algorithm_name: str, warmup: float) -> dict:
    key = (algorithm_name, warmup)
    if key not in _BASELINES:
        result, _ = _run(RingMultiprocessor, algorithm_name, warmup)
        _BASELINES[key] = result.summary()
    return _BASELINES[key]


@pytest.mark.parametrize("warmup", WARMUPS)
@pytest.mark.parametrize("core", sorted(ARRAY_CORES))
@pytest.mark.parametrize("algorithm", LEGACY_ALGORITHMS)
def test_legacy_cell_bit_identical(algorithm, core, warmup):
    result, _ = _run(ARRAY_CORES[core], algorithm, warmup)
    assert result.summary() == _baseline_summary(algorithm, warmup)


@pytest.mark.parametrize("core", sorted(ARRAY_CORES))
def test_criticality_summary_and_counter_match_object(core):
    object_result, object_algorithm = _run(
        RingMultiprocessor, "criticality", 0.3
    )
    array_result, array_algorithm = _run(
        ARRAY_CORES[core], "criticality", 0.3
    )
    assert array_result.summary() == object_result.summary()
    assert (
        array_algorithm.critical_choices
        == object_algorithm.critical_choices
    )


@pytest.mark.parametrize("core", sorted(ARRAY_CORES))
def test_hybrid_summary_and_counter_match_object(core):
    object_result, object_algorithm = _run(
        RingMultiprocessor, "superset_hybrid", 0.3
    )
    array_result, array_algorithm = _run(
        ARRAY_CORES[core], "superset_hybrid", 0.3
    )
    assert array_result.summary() == object_result.summary()
    assert (
        array_algorithm.aggressive_choices
        == object_algorithm.aggressive_choices
    )
    assert object_algorithm.aggressive_choices > 0

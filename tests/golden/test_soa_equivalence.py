"""Golden-equivalence tests for the struct-of-arrays core.

The SoA core (``core=soa``) replaces the object core's subsystem
seams with one fused event loop over integer-coded state; its whole
claim is that this is a *mechanical* transformation.  Two checks pin
that claim to the same golden capture the hot-path optimizations are
checked against:

* every golden cell, executed through the normal harness path with
  ``RunSpec(core="soa")``, produces a summary bit-identical to the
  pre-optimization golden capture (and therefore to the object core,
  which is pinned to the same file by ``test_golden_equivalence``);
* the fingerprints of the two cores differ, so the result cache never
  serves one core's entry for the other (their ``events`` counts are
  diagnostic and differ even though summaries match).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.harness.parallel import RunSpec, execute_spec

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "summaries.json")

#: Accesses per core the golden cells were captured at.
GOLDEN_SCALE = 200

with open(GOLDEN_PATH, "r", encoding="utf-8") as _handle:
    GOLDEN_CELLS = json.load(_handle)


def _cell_id(cell) -> str:
    return "%s-%s-warmup%s" % (
        cell["algorithm"],
        cell["workload"],
        cell["warmup_fraction"],
    )


def _soa_spec(cell) -> RunSpec:
    return RunSpec(
        algorithm=cell["algorithm"],
        workload=cell["workload"],
        accesses_per_core=GOLDEN_SCALE,
        seed=0,
        warmup_fraction=cell["warmup_fraction"],
        core="soa",
    )


@pytest.mark.parametrize("cell", GOLDEN_CELLS, ids=_cell_id)
def test_soa_summary_matches_golden(cell):
    result = execute_spec(_soa_spec(cell))
    assert result.summary() == cell["summary"]


def test_soa_fingerprint_differs_from_object():
    cell = GOLDEN_CELLS[0]
    soa = _soa_spec(cell)
    obj = RunSpec(
        algorithm=cell["algorithm"],
        workload=cell["workload"],
        accesses_per_core=GOLDEN_SCALE,
        seed=0,
        warmup_fraction=cell["warmup_fraction"],
    )
    assert soa.fingerprint(cores_per_cmp=1) != obj.fingerprint(
        cores_per_cmp=1
    )

"""Topology-seam golden tests.

The topology refactor's bit-identity claim, checked against the same
``summaries.json`` capture the other golden suites use: selecting
``topology=ring`` *explicitly* (instead of leaving the config default)
must reproduce every golden cell byte-for-byte on all three simulation
cores, and must produce the same result-cache key as the default
spelling (so warm caches survive the refactor).

Plus the hierarchical acceptance surface: all seven algorithms run on
the 16-CMP two-level ``hier_ring`` machine with tracing on and the
per-segment trace auditor reports zero violations, and a 16-CMP trace
file replays through the default machine (the torus auto-derive fix).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.harness.parallel import RunSpec, execute_spec

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "summaries.json")
GOLDEN_SCALE = 200

with open(GOLDEN_PATH, "r", encoding="utf-8") as _handle:
    GOLDEN_CELLS = json.load(_handle)


def _cell_id(cell) -> str:
    return "%s-%s-warmup%s" % (
        cell["algorithm"],
        cell["workload"],
        cell["warmup_fraction"],
    )


def _spec(cell, core="object", topology=None) -> RunSpec:
    return RunSpec(
        algorithm=cell["algorithm"],
        workload=cell["workload"],
        accesses_per_core=GOLDEN_SCALE,
        seed=0,
        warmup_fraction=cell["warmup_fraction"],
        core=core,
        topology=topology,
    )


@pytest.mark.parametrize("core", ["object", "soa", "jit"])
@pytest.mark.parametrize("cell", GOLDEN_CELLS, ids=_cell_id)
def test_explicit_ring_topology_matches_golden(cell, core):
    result = execute_spec(_spec(cell, core=core, topology="ring"))
    assert result.summary() == cell["summary"]


@pytest.mark.parametrize("cell", GOLDEN_CELLS[:3], ids=_cell_id)
def test_explicit_ring_shares_default_cache_key(cell):
    """topology="ring" and the unset default must hit the same cache
    entry - the fingerprint elides the default TopologyConfig."""
    assert (
        _spec(cell, topology="ring").cache_key()
        == _spec(cell).cache_key()
    )


def test_default_fingerprint_has_no_topology_key():
    fingerprint = _spec(GOLDEN_CELLS[0]).fingerprint(1)
    assert "topology" not in fingerprint
    assert "topology" not in fingerprint["machine"]


# ----------------------------------------------------------------------
# hier_ring acceptance surface


ALL_ALGORITHMS = (
    "lazy",
    "eager",
    "oracle",
    "subset",
    "superset_con",
    "superset_agg",
    "exact",
)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_hier_ring_16cmp_traced_run_audits_clean(algorithm):
    from repro.obs.audit import TraceAuditor
    from repro.obs.runner import run_traced

    traced = run_traced(
        algorithm,
        "specjbb",
        accesses_per_core=80,
        topology="hier_ring",
        num_cmps=16,
        check_invariants=True,
    )
    assert traced.meta["num_cmps"] == 16
    assert traced.meta["topology"] == "hier_ring"
    assert len(traced.meta["successors"]) == 16
    auditor = TraceAuditor(
        num_cmps=16, successors=traced.meta["successors"]
    )
    violations = auditor.audit(traced.events)
    assert violations == []


def test_hier_ring_differs_from_ring():
    """The hierarchy must actually change timing (global hops cost
    extra), otherwise the new topology is a no-op."""
    ring = execute_spec(
        RunSpec("eager", "specjbb", accesses_per_core=100,
                topology="ring", num_cmps=16)
    )
    hier = execute_spec(
        RunSpec("eager", "specjbb", accesses_per_core=100,
                topology="hier_ring", num_cmps=16)
    )
    assert ring.exec_time != hier.exec_time
    # Same coherence behaviour, different interconnect timing.
    assert (
        ring.stats.read_ring_transactions
        == hier.stats.read_ring_transactions
    )


def test_16cmp_trace_replays_through_default_machine(tmp_path):
    """Satellite: a 16-CMP trace file must shape the default machine
    without tripping the old fixed 4x2-torus validation error."""
    from repro.workloads.io import save_trace
    from repro.workloads.profiles import reshape_profile, resolve_profile
    from repro.workloads.synthetic import generate_workload

    profile = reshape_profile(
        resolve_profile("specjbb", accesses_per_core=50), 16
    )
    trace = generate_workload(profile)
    assert trace.num_cores // trace.cores_per_cmp == 16
    path = tmp_path / "jbb16.jsonl"
    save_trace(trace, str(path))

    result = execute_spec(
        RunSpec("lazy", "file:%s" % path, warmup_fraction=0.0)
    )
    assert result.exec_time > 0
    assert result.stats.reads > 0

"""Golden-equivalence tests for the hot-path optimizations.

``summaries.json`` pins the full ``SimulationResult.summary()`` (plus
the engine event count) of every algorithm x workload x warmup cell,
captured on the pre-optimization engine (commit ``b43532b``, one
event per ring hop, no prewarm memo, no FORWARD fast path).  Two
claims are checked against it:

* **Results are unchanged.**  With all optimizations on (the
  default), every summary - exec time, crossings, energy, squashes,
  latencies - is bit-identical to the golden capture.  Hop batching
  fires *fewer engine events* for the same simulated behaviour, so
  this pass compares summaries only.
* **Batching is purely mechanical.**  With ``hop_batching=False`` the
  walk degenerates to exactly the original one-event-per-hop
  schedule, and the *event count* must also match the golden capture
  - demonstrating that batching changed how the walk is driven, not
  what it does.

Regenerating ``summaries.json`` after an intentional semantic change:
run any cell below at ``GOLDEN_SCALE`` with batching off and dump
``{algorithm, workload, warmup_fraction, summary, events}`` per cell.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.config import default_machine
from repro.harness.parallel import RunSpec, execute_spec

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "summaries.json")

#: Accesses per core the golden cells were captured at.
GOLDEN_SCALE = 200

with open(GOLDEN_PATH, "r", encoding="utf-8") as _handle:
    GOLDEN_CELLS = json.load(_handle)


def _cell_id(cell) -> str:
    return "%s-%s-warmup%s" % (
        cell["algorithm"],
        cell["workload"],
        cell["warmup_fraction"],
    )


def _golden_spec(cell, config=None) -> RunSpec:
    return RunSpec(
        algorithm=cell["algorithm"],
        workload=cell["workload"],
        accesses_per_core=GOLDEN_SCALE,
        seed=0,
        warmup_fraction=cell["warmup_fraction"],
        config=config,
    )


def test_golden_matrix_covers_acceptance_surface():
    """The golden file must span all seven algorithms on >=2 workloads
    (the equivalence claim is only as strong as its coverage)."""
    algorithms = {cell["algorithm"] for cell in GOLDEN_CELLS}
    workloads = {cell["workload"] for cell in GOLDEN_CELLS}
    assert algorithms == {
        "lazy",
        "eager",
        "oracle",
        "subset",
        "superset_con",
        "superset_agg",
        "exact",
    }
    assert len(workloads) >= 2


@pytest.mark.parametrize("cell", GOLDEN_CELLS, ids=_cell_id)
def test_summary_matches_pre_optimization_golden(cell):
    result = execute_spec(_golden_spec(cell))
    assert result.summary() == cell["summary"]


@pytest.mark.parametrize("cell", GOLDEN_CELLS, ids=_cell_id)
def test_unbatched_walk_replays_golden_event_for_event(cell):
    config = default_machine(algorithm=cell["algorithm"], cores_per_cmp=1)
    config = config.replace(
        ring=dataclasses.replace(config.ring, hop_batching=False)
    )
    result = execute_spec(_golden_spec(cell, config=config))
    assert result.summary() == cell["summary"]
    assert result.events == cell["events"]

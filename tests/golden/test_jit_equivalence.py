"""Golden-equivalence tests for the compiled-kernel core.

The jit core (``core=jit``) exports the SoA machine's construction
state into flat integer arrays and replays the whole event loop in one
kernel - numba-compiled when the package is importable, plain Python
otherwise, with the *same* code body on both paths.  These tests pin
whichever path the environment provides (CI runs both legs) to the
same golden capture the object and SoA cores are pinned to:

* every golden cell, executed through the normal harness path with
  ``RunSpec(core="jit")``, produces a summary bit-identical to the
  golden capture;
* the jit fingerprint differs from both other cores', so the result
  cache never serves one core's entry for another;
* setting ``FLEXSNOOP_JIT_DISABLE=1`` forces the Python fallback and
  still reproduces the golden summary (trivially true on machines
  without numba, a real check on the numba CI leg).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.harness.parallel import RunSpec, execute_spec
from repro.sim.jit import JIT_DISABLE_ENV, NUMBA_AVAILABLE

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "summaries.json")

#: Accesses per core the golden cells were captured at.
GOLDEN_SCALE = 200

with open(GOLDEN_PATH, "r", encoding="utf-8") as _handle:
    GOLDEN_CELLS = json.load(_handle)


def _cell_id(cell) -> str:
    return "%s-%s-warmup%s" % (
        cell["algorithm"],
        cell["workload"],
        cell["warmup_fraction"],
    )


def _jit_spec(cell) -> RunSpec:
    return RunSpec(
        algorithm=cell["algorithm"],
        workload=cell["workload"],
        accesses_per_core=GOLDEN_SCALE,
        seed=0,
        warmup_fraction=cell["warmup_fraction"],
        core="jit",
    )


@pytest.mark.parametrize("cell", GOLDEN_CELLS, ids=_cell_id)
def test_jit_summary_matches_golden(cell):
    result = execute_spec(_jit_spec(cell))
    assert result.summary() == cell["summary"]


def test_jit_fingerprint_differs_from_other_cores():
    cell = GOLDEN_CELLS[0]
    jit = _jit_spec(cell)
    others = [
        RunSpec(
            algorithm=cell["algorithm"],
            workload=cell["workload"],
            accesses_per_core=GOLDEN_SCALE,
            seed=0,
            warmup_fraction=cell["warmup_fraction"],
            core=core,
        )
        for core in ("object", "soa")
    ]
    for other in others:
        assert jit.fingerprint(cores_per_cmp=1) != other.fingerprint(
            cores_per_cmp=1
        )


@pytest.mark.skipif(
    not NUMBA_AVAILABLE, reason="fallback is already the only path"
)
def test_jit_fallback_env_matches_golden(monkeypatch):
    monkeypatch.setenv(JIT_DISABLE_ENV, "1")
    cell = GOLDEN_CELLS[0]
    result = execute_spec(_jit_spec(cell))
    assert result.summary() == cell["summary"]

"""Setuptools shim for legacy editable installs.

The project metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-build-isolation`` works on environments
without the ``wheel`` package (legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()

#!/usr/bin/env python
"""Parameter sweep: where does the snooping-algorithm choice matter?

Uses the generic sweep API to reproduce the paper's technology
argument (Section 1): as snoop operations get relatively more
expensive (multi-GHz cores, power-gated tag arrays), Lazy's
snoop-per-hop serialization hurts more and Flexible Snooping's
filtering pays off more.

Run:  python examples/parameter_sweep.py
"""

from __future__ import annotations

from repro.harness.sweep import sweep_ring_field

SNOOP_TIMES = [15, 55, 150]


def main() -> None:
    sweeps = {
        name: sweep_ring_field(
            "snoop_time",
            SNOOP_TIMES,
            algorithm=name,
            workload="splash2",
            accesses_per_core=600,
        )
        for name in ("lazy", "superset_agg")
    }

    lazy_exec = sweeps["lazy"].series("exec_time")
    agg_exec = sweeps["superset_agg"].series("exec_time")
    lazy_latency = sweeps["lazy"].series("mean_supplier_latency")
    agg_latency = sweeps["superset_agg"].series("mean_supplier_latency")

    header = "%12s %14s %14s %12s" % (
        "snoop (cyc)", "Lazy supl.lat", "Agg supl.lat", "Agg speedup"
    )
    print(header)
    print("-" * len(header))
    for snoop_time in SNOOP_TIMES:
        print(
            "%12d %14.0f %14.0f %11.1f%%"
            % (
                snoop_time,
                lazy_latency[snoop_time],
                agg_latency[snoop_time],
                100 * (1 - agg_exec[snoop_time] / lazy_exec[snoop_time]),
            )
        )
    print()
    print("Lazy pays the snoop at every hop, so its supplier latency")
    print("scales ~N/2x faster with snoop cost than the forwarding")
    print("algorithms' - the paper's motivation, quantified.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Per-application SPLASH-2 breakdown.

The paper's SPLASH-2 bars are means over 11 applications; the
aggregate profile used by the benchmark suite stands in for that
mean.  This example runs each application profile individually under
Lazy and Superset Agg and reports the spread - the way Figure 8's
geometric mean hides per-app variation.

Run:  python examples/splash2_breakdown.py [accesses_per_core]
"""

from __future__ import annotations

import sys

from repro import RingMultiprocessor, build_algorithm, default_machine
from repro.workloads.splash2_apps import (
    SPLASH2_APPS,
    build_app_workload,
    geometric_mean,
)


def run(algorithm_name: str, workload):
    machine = default_machine(
        algorithm=algorithm_name, cores_per_cmp=workload.cores_per_cmp
    )
    system = RingMultiprocessor(
        machine, build_algorithm(algorithm_name), workload,
        warmup_fraction=0.3,
    )
    return system.run()


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 500

    header = "%-16s %9s %9s %10s %9s" % (
        "application", "supplier", "Lazy sn.", "Agg sn.", "Agg time"
    )
    print(header)
    print("-" * len(header))

    ratios = []
    for app in sorted(SPLASH2_APPS):
        workload = build_app_workload(app, accesses_per_core=scale)
        lazy = run("lazy", workload)
        workload = build_app_workload(app, accesses_per_core=scale)
        agg = run("superset_agg", workload)
        ratio = agg.exec_time / lazy.exec_time
        ratios.append(ratio)
        print(
            "%-16s %8.0f%% %9.2f %10.2f %9.3f"
            % (
                app,
                100 * lazy.stats.supplier_found_fraction,
                lazy.stats.snoops_per_read_request,
                agg.stats.snoops_per_read_request,
                ratio,
            )
        )

    print("-" * len(header))
    print(
        "%-16s %30s %9.3f"
        % ("geomean", "", geometric_mean(ratios))
    )
    print()
    print("(Agg time is execution time normalized to Lazy, per app;")
    print(" the paper's Figure 8 reports the geometric mean.)")


if __name__ == "__main__":
    main()

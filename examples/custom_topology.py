#!/usr/bin/env python
"""Custom topology: register a new snoop-interconnect shape.

The simulator's walk order and segment timing come from a
registry-selected :class:`~repro.ring.topology.SnoopTopology` (kind
``topology``), so a new interconnect is a plugin, not a fork.  This
example builds a **chiplet ring**: CMPs are packaged in pairs, the
ring segment between two CMPs on one package is fast, and the segment
that crosses packages is slow - the same "hierarchy in the segment
timing" idea as the builtin ``hier_ring``, with a different floorplan.

Because the chiplet ring is still one static Hamiltonian cycle, it
exports successor/latency tables and runs on *all three* simulation
cores (object, soa, jit) unchanged.  The second half shows the other
side of that contract: a path-dependent topology that cannot export
tables runs on the object core's per-hop walker, and the fused cores
decline through their usual fallback envelope.

A third-party package registers the same factory with an entry point:

    [project.entry-points."flexsnoop.topologies"]
    chiplet_ring = "my_pkg.topologies:make_chiplet_ring"

Run:  python examples/custom_topology.py
"""

from __future__ import annotations

from repro.config import DataNetworkConfig
from repro.harness.experiments import run_experiment
from repro.registry import REGISTRY
from repro.ring.topology import SnoopTopology


class ChipletRing(SnoopTopology):
    """Flat unidirectional ring over CMPs packaged in pairs.

    Segment leaving an even node stays on-package (fast); the segment
    leaving an odd node crosses to the next package (slow).  Data
    replies take the shortest way around the same ring.
    """

    kind = "chiplet_ring"

    ON_PACKAGE_HOP = 15
    OFF_PACKAGE_HOP = 60

    def __init__(self, num_nodes: int, data: DataNetworkConfig) -> None:
        if num_nodes % 2:
            raise ValueError("chiplet_ring packages CMPs in pairs")
        super().__init__(num_nodes)
        self._data = data

    def next_node(self, node: int) -> int:
        self._check(node)
        # Id-order cycle, like the builtins (the lint test reserves the
        # modulo spelling for repro.ring.topology, so step explicitly).
        return node + 1 if node + 1 < self.num_nodes else 0

    def segment_latency(self, node: int) -> int:
        self._check(node)
        return self.OFF_PACKAGE_HOP if node % 2 else self.ON_PACKAGE_HOP

    def transfer_latency(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        downstream = self.ring_distance(src, dst)
        hops = min(downstream, self.num_nodes - downstream)
        return hops * self._data.per_hop_latency + self._data.overhead


def make_chiplet_ring(config) -> ChipletRing:
    """Topology factory: called with the full MachineConfig."""
    return ChipletRing(config.num_cmps, config.data_network)


class OddFirstTopology(SnoopTopology):
    """Path-dependent walk: visit odd nodes first, then even ones.

    There is no single successor table (node 7's next hop depends on
    what was already visited), so ``successors()`` declines and only
    the object core's per-hop ``route()`` walker can drive it.
    """

    kind = "odd_first"

    def route(self, requester, path_so_far):
        remaining = [
            node
            for node in range(self.num_nodes)
            if node != requester and node not in path_so_far
        ]
        odd = [node for node in remaining if node % 2]
        if odd:
            return odd[0]
        return remaining[0] if remaining else requester

    def successors(self):
        raise NotImplementedError("routing is path-dependent")

    def segment_latency(self, node):
        return 39

    def transfer_latency(self, src, dst):
        return 80


def main() -> None:
    REGISTRY.register("topology", "chiplet_ring", make_chiplet_ring)
    REGISTRY.register(
        "topology", "odd_first",
        lambda config: OddFirstTopology(config.num_cmps),
    )

    print("ring vs chiplet_ring (splash2, scale 400):")
    header = "%-12s | %10s %10s | %10s %10s" % (
        "algorithm", "ring", "chiplet", "ring", "chiplet"
    )
    print("%-12s | %21s | %21s" % ("", "exec time", "snoops/req"))
    print(header)
    print("-" * len(header))
    for algorithm in ("lazy", "eager", "superset_con"):
        flat = run_experiment(algorithm, "splash2", accesses_per_core=400)
        chiplet = run_experiment(
            algorithm, "splash2", accesses_per_core=400,
            topology="chiplet_ring",
        )
        print(
            "%-12s | %10d %10d | %10.2f %10.2f"
            % (
                algorithm,
                flat.exec_time,
                chiplet.exec_time,
                flat.stats.snoops_per_read_request,
                chiplet.stats.snoops_per_read_request,
            )
        )

    print()
    print("custom topologies run on the fused cores too (static tables):")
    soa = run_experiment(
        "lazy", "splash2", accesses_per_core=400,
        topology="chiplet_ring", core="soa",
    )
    obj = run_experiment(
        "lazy", "splash2", accesses_per_core=400,
        topology="chiplet_ring",
    )
    print(
        "  core=soa matches core=object: %s (exec time %d)"
        % (soa.summary() == obj.summary(), soa.exec_time)
    )

    print()
    print("a path-dependent topology only runs on the object core:")
    dynamic = run_experiment(
        "lazy", "splash2", accesses_per_core=400, topology="odd_first"
    )
    print("  object core walked it fine: exec time %d" % dynamic.exec_time)
    from repro.sim.soa import SoaUnsupportedError
    try:
        run_experiment(
            "lazy", "splash2", accesses_per_core=400,
            topology="odd_first", core="soa",
        )
    except SoaUnsupportedError as error:
        print("  core=soa declined as designed: %s" % error)


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Algorithm shootout: all seven snooping algorithms on one workload.

Reproduces, at example scale, the paper's main comparison (Section
6.1): for each algorithm it reports the four evaluation dimensions -
snoops per request, ring messages, execution time, and snoop-traffic
energy - normalized to Lazy, plus the raw supplier statistics.

Run:  python examples/algorithm_shootout.py [workload]
      workload: splash2 (default), specjbb, or specweb
"""

from __future__ import annotations

import sys

from repro import (
    RingMultiprocessor,
    build_algorithm,
    build_workload,
    default_machine,
)

ALGORITHMS = (
    "lazy",
    "eager",
    "oracle",
    "subset",
    "superset_con",
    "superset_agg",
    "exact",
)


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "splash2"
    scale = 800 if workload_name == "splash2" else 2000
    results = {}
    for name in ALGORITHMS:
        workload = build_workload(workload_name, accesses_per_core=scale)
        machine = default_machine(
            algorithm=name, cores_per_cmp=workload.cores_per_cmp
        )
        system = RingMultiprocessor(
            machine, build_algorithm(name), workload, warmup_fraction=0.3
        )
        results[name] = system.run()
        print("ran %-13s (%d events)" % (name, results[name].events))

    lazy = results["lazy"]
    print()
    print("workload: %s  (supplier found for %.0f%% of ring reads)" % (
        workload_name,
        100 * lazy.stats.supplier_found_fraction,
    ))
    header = "%-14s %9s %9s %9s %9s" % (
        "algorithm", "snoops", "messages", "time", "energy"
    )
    print(header)
    print("-" * len(header))
    for name in ALGORITHMS:
        result = results[name]
        print(
            "%-14s %9.2f %9.3f %9.3f %9.3f"
            % (
                name,
                result.stats.snoops_per_read_request,
                result.stats.read_ring_crossings
                / max(lazy.stats.read_ring_crossings, 1),
                result.exec_time / max(lazy.exec_time, 1),
                result.total_energy / max(lazy.total_energy, 1e-9),
            )
        )
    print()
    print("(messages, time and energy are normalized to Lazy)")

    agg, eager = results["superset_agg"], results["eager"]
    con = results["superset_con"]
    print()
    print("Headline (Section 6.1.5):")
    print(
        "  high-performance pick SupersetAgg: %.3fx Eager's time, "
        "%.0f%% less energy than Eager"
        % (
            agg.exec_time / eager.exec_time,
            100 * (1 - agg.total_energy / eager.total_energy),
        )
    )
    print(
        "  energy-efficient pick SupersetCon: %.1f%% slower than "
        "SupersetAgg, %.0f%% less energy"
        % (
            100 * (con.exec_time / agg.exec_time - 1),
            100 * (1 - con.total_energy / agg.total_energy),
        )
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: simulate one workload under two snooping algorithms.

Builds the paper's 8-CMP embedded-ring machine, runs a small
SPLASH-2-like trace under Lazy (the baseline ring algorithm) and under
Superset Aggressive (the paper's high-performance Flexible Snooping
algorithm), and compares the four headline metrics.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    RingMultiprocessor,
    build_algorithm,
    build_workload,
    default_machine,
)


def run(algorithm_name: str, workload):
    machine = default_machine(algorithm=algorithm_name,
                              cores_per_cmp=workload.cores_per_cmp)
    algorithm = build_algorithm(algorithm_name)
    system = RingMultiprocessor(machine, algorithm, workload,
                                warmup_fraction=0.3)
    return system.run()


def main() -> None:
    workload = build_workload("splash2", accesses_per_core=800)
    print("workload: %s (%d cores, %d accesses)" % (
        workload.name, workload.num_cores, workload.total_accesses))
    print()

    results = {name: run(name, workload)
               for name in ("lazy", "superset_agg")}

    header = "%-22s %14s %14s" % ("metric", "lazy", "superset_agg")
    print(header)
    print("-" * len(header))
    rows = [
        ("snoops / read request",
         lambda r: "%.2f" % r.stats.snoops_per_read_request),
        ("ring read crossings",
         lambda r: "%d" % r.stats.read_ring_crossings),
        ("mean read-miss latency",
         lambda r: "%.0f cyc" % r.stats.mean_read_miss_latency),
        ("execution time",
         lambda r: "%d cyc" % r.exec_time),
        ("snoop-traffic energy",
         lambda r: "%.1f uJ" % (r.total_energy / 1000.0)),
    ]
    for label, fmt in rows:
        print("%-22s %14s %14s" % (
            label, fmt(results["lazy"]), fmt(results["superset_agg"])))

    lazy, agg = results["lazy"], results["superset_agg"]
    print()
    print("Superset Agg is %.1f%% faster than Lazy and filters %.0f%% "
          "of its snoops." % (
              100 * (1 - agg.exec_time / lazy.exec_time),
              100 * (1 - agg.stats.snoops_per_read_request
                     / lazy.stats.snoops_per_read_request)))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Custom workload: explore how sharing behaviour moves the
Lazy/Eager/Flexible trade-off.

Sweeps the cache-to-cache transfer rate of a synthetic workload (by
varying how much of the access stream is shared vs DRAM-bound) and
shows where each algorithm wins.  This reproduces the intuition behind
the paper's workload selection: SPECjbb-like (no sharing) workloads
make filtering trivial, SPLASH-like (heavy sharing) workloads make the
supplier predictors earn their keep.

The second half registers the same profile as a **workload-source
plugin**: once a factory is registered under the registry `workload`
kind, the custom name works everywhere a builtin profile name does -
`resolve_source`, `RunSpec`, `flexsnoop run --workload`, figures.  A
third-party package gets the same effect with an entry point:

    [project.entry-points."flexsnoop.workloads"]
    custom-mix = "my_pkg.workloads:make_custom_mix"

Run:  python examples/custom_workload.py
"""

from __future__ import annotations

from repro import (
    RingMultiprocessor,
    SharingProfile,
    build_algorithm,
    default_machine,
    generate_workload,
)
from repro.harness.parallel import RunSpec, execute_spec
from repro.registry import REGISTRY
from repro.workloads.source import resolve_source


def make_profile(p_shared: float, p_cold: float, seed: int = 9):
    return SharingProfile(
        name="custom(p_shared=%.2f)" % p_shared,
        num_cores=8,
        cores_per_cmp=1,
        accesses_per_core=2000,
        p_shared=p_shared,
        p_cold=p_cold,
        shared_lines=1024,
        private_lines=1024,
        write_fraction_shared=0.15,
        migratory_fraction=0.1,
        burst_mean=4.0,
        prewarm_fraction=1.0,
        zipf_exponent=0.8,
        private_zipf_exponent=1.2,
        think_mean=150.0,
        seed=seed,
    )


def run(algorithm_name: str, profile: SharingProfile):
    workload = generate_workload(profile)
    machine = default_machine(
        algorithm=algorithm_name, cores_per_cmp=workload.cores_per_cmp
    )
    system = RingMultiprocessor(
        machine, build_algorithm(algorithm_name), workload,
        warmup_fraction=0.3,
    )
    return system.run()


def make_custom_mix(accesses_per_core: int = 2000, seed: int = 9):
    """Workload-source factory: the registry calls this with the
    requested scale/seed and wraps the returned profile lazily (no
    trace is generated until a consumer streams or materializes)."""
    import dataclasses

    return dataclasses.replace(
        make_profile(0.25, 0.10, seed=seed),
        name="custom-mix",
        accesses_per_core=accesses_per_core,
    )


def plugin_demo() -> None:
    REGISTRY.register("workload", "custom-mix", make_custom_mix)

    # The name now resolves like any builtin: cheaply (geometry and
    # cache identity come from the profile, nothing is generated)...
    source = resolve_source("custom-mix", accesses_per_core=1500)
    print(
        "registered %r: %d cores, %d per CMP, descriptor %s..."
        % (
            source.name,
            source.num_cores,
            source.cores_per_cmp,
            str(source.descriptor())[:40],
        )
    )

    # ...and through the full harness path, cache key included.
    result = execute_spec(
        RunSpec(
            algorithm="superset_con",
            workload="custom-mix",
            accesses_per_core=1500,
            warmup_fraction=0.3,
        )
    )
    print(
        "ran custom-mix through the harness: %.2f snoops/request"
        % result.stats.snoops_per_read_request
    )


def main() -> None:
    sweep = [
        (0.05, 0.30),  # SPECjbb-like: almost no sharing, DRAM bound
        (0.20, 0.15),
        (0.40, 0.05),  # SPLASH-like: sharing dominates
    ]
    header = "%-10s %9s | %28s | %26s" % (
        "p_shared", "supplier",
        "snoops/request (L / E / SupC)",
        "energy vs Lazy (E / SupC)",
    )
    print(header)
    print("-" * len(header))
    for p_shared, p_cold in sweep:
        profile = make_profile(p_shared, p_cold)
        lazy = run("lazy", profile)
        eager = run("eager", profile)
        con = run("superset_con", profile)
        print(
            "%-10.2f %8.0f%% | %8.2f / %5.2f / %5.2f     | "
            "%9.2fx / %6.2fx"
            % (
                p_shared,
                100 * lazy.stats.supplier_found_fraction,
                lazy.stats.snoops_per_read_request,
                eager.stats.snoops_per_read_request,
                con.stats.snoops_per_read_request,
                eager.total_energy / lazy.total_energy,
                con.total_energy / lazy.total_energy,
            )
        )
    print()
    print(
        "More sharing -> suppliers closer -> Lazy snoops less, and the"
    )
    print(
        "Superset predictor filters most of the ring walk either way;"
    )
    print("Eager pays ~1.8x energy regardless of the workload.")
    print()
    plugin_demo()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Custom decision policy: register a new snooping algorithm.

Every snooping algorithm is a *decision policy* behind the decision
seam (`repro/core/decision.py`): it maps a `DecisionContext` - the
supplier prediction plus the requester's urgency signals (retry
count, MSHR-waiter depth, ring age) - to one of the three Table 2
primitives.  A policy that publishes its behaviour as a static
:class:`~repro.core.decision.DecisionTable` runs on *all three*
simulation cores: the fused ``soa``/``jit`` cores hoist the table and
thresholds into plain integers and tally its declared counted output
in-kernel.

This example builds **Backoff**: aggressive Forward-Then-Snoop while
the requester is calm, but once its access has been squashed and
retried it *yields* - Snoop-Then-Forward keeps the contended line to
one message on the ring.  (The opposite bet from the builtin
``criticality``, which spends extra bandwidth on urgent requesters.)
Because Backoff is a table, the example runs it bit-identically on
the object, soa and jit cores, with an exact ``backoff_choices``
counter on each.

The second half shows the other side of the contract: a policy whose
decision depends on state *outside* the context (a decision-count
phase) publishes no table, is confined to the object core, and
``core=jit`` declines it with the real reason.

A third-party package registers the same classes with entry points
(no edits to this repo); the optional ``registry_metadata`` attribute
supplies the registration metadata in that route too:

    [project.entry-points."flexsnoop.algorithms"]
    backoff = "my_pkg.policies:Backoff"

Once registered, the names work everywhere at once -
``flexsnoop run --algorithm backoff``, ``flexsnoop figure saturation
--algorithms all`` (which expands to every registered algorithm,
plugins included), policy-aware trace audits, the result cache.

Run:  python examples/custom_policy.py
"""

from __future__ import annotations

from repro.config import default_machine
from repro.core.algorithms import SnoopingAlgorithm, build_algorithm
from repro.core.decision import DecisionTable, as_context
from repro.core.primitives import Primitive
from repro.harness.experiments import run_experiment
from repro.registry import REGISTRY
from repro.sim.jit import JitRingMultiprocessor
from repro.sim.soa import SoaRingMultiprocessor, SoaUnsupportedError
from repro.sim.system import RingMultiprocessor
from repro.workloads.source import resolve_source

WORKLOAD = "splash2"
SCALE = 240


class Backoff(SnoopingAlgorithm):
    """Aggressive while calm, conservative once squashed.

    Calm row: Forward Then Snoop on a positive prediction (Superset
    Agg's bet - latency first).  Critical row (the access has been
    retried): Snoop Then Forward, yielding ring bandwidth on a line
    that is evidently contended.  Negatives filter in both rows, so
    the policy needs a no-false-negative predictor, like the
    Superset family.
    """

    name = "backoff"
    display_name = "Backoff"
    default_predictor_kind = "superset"
    decouple_writes = True

    #: Entry-point registrations read this attribute; the in-process
    #: registration below passes the same dict explicitly.
    registry_metadata = {
        "display_name": "Backoff",
        "default_predictor": "Supy2k",
        "default_predictor_kind": "superset",
        "decouple_writes": True,
        "compatible_predictor_kinds": ("superset", "exact", "perfect"),
        "decision_inputs": ("prediction", "retries"),
        "dynamic_choose": False,
    }

    def __init__(self, retry_threshold: int = 1) -> None:
        self.table = DecisionTable(
            on_true=Primitive.FORWARD_THEN_SNOOP,
            on_false=Primitive.FORWARD,
            critical_true=Primitive.SNOOP_THEN_FORWARD,
            critical_false=Primitive.FORWARD,
            retry_threshold=retry_threshold,
            counts="critical",
        )
        self.backoff_choices = 0

    def fold_choice_counts(self, count: int) -> None:
        self.backoff_choices += count

    def choose(self, ctx) -> Primitive:
        context = as_context(ctx)
        table = self.table
        if table.is_critical(context):
            self.backoff_choices += 1
        return table.decide(context)


class PhaseSampler(SnoopingAlgorithm):
    """Alternate Agg/Con on a decision-count phase.

    The phase counter lives *outside* the `DecisionContext`, so the
    policy cannot publish a table: ``decision_table()`` stays None,
    the fused cores decline it, and only the object core's per-hop
    ``choose()`` path can run it.
    """

    name = "phase_sampler"
    display_name = "Phase Sampler"
    default_predictor_kind = "superset"
    decouple_writes = True

    registry_metadata = {
        "display_name": "Phase Sampler",
        "default_predictor": "Supy2k",
        "default_predictor_kind": "superset",
        "decouple_writes": True,
        "compatible_predictor_kinds": ("superset", "exact", "perfect"),
        "decision_inputs": ("prediction", "decision_count"),
        "dynamic_choose": True,
    }

    PHASE = 1024

    def __init__(self) -> None:
        self._decisions = 0

    def decision_inputs(self):
        return ("prediction", "decision_count")

    def choose(self, ctx) -> Primitive:
        context = as_context(ctx)
        if not context.prediction:
            return Primitive.FORWARD
        self._decisions += 1
        if (self._decisions // self.PHASE) % 2:
            return Primitive.SNOOP_THEN_FORWARD
        return Primitive.FORWARD_THEN_SNOOP


def register() -> None:
    for cls in (Backoff, PhaseSampler):
        REGISTRY.register(
            "algorithm", cls.name, cls, metadata=cls.registry_metadata
        )


def run_on(core_cls):
    algorithm = build_algorithm("backoff")
    # Compressed think time piles transactions on top of each other,
    # so squash/retry cycles (Backoff's decision input) actually
    # happen - and it stays inside the fused cores' envelope, unlike
    # the link-contention knobs (object core only).
    source = resolve_source(
        WORKLOAD, accesses_per_core=SCALE, think_scale=0.25
    )
    machine = default_machine(
        algorithm="backoff",
        cores_per_cmp=source.cores_per_cmp,
        num_cmps=source.num_cmps,
    )
    result = core_cls(machine, algorithm, source).run()
    return result, algorithm


def main() -> None:
    register()
    backoff = build_algorithm("backoff")
    print(
        "registered 'backoff': decision inputs %s, counted output %r"
        % (
            "/".join(backoff.decision_inputs()),
            backoff.table.counts,
        )
    )
    print()

    # The table-backed policy runs on all three cores, bit-identical,
    # with the counted output exact everywhere.
    cores = (
        ("object", RingMultiprocessor),
        ("soa", SoaRingMultiprocessor),
        ("jit", JitRingMultiprocessor),
    )
    header = "%-8s %14s %16s" % ("core", "exec (cyc)", "backoff choices")
    print(header)
    print("-" * len(header))
    baseline = None
    for core_name, core_cls in cores:
        result, algorithm = run_on(core_cls)
        print(
            "%-8s %14d %16d"
            % (core_name, result.exec_time, algorithm.backoff_choices)
        )
        if baseline is None:
            baseline = (result.summary(), algorithm.backoff_choices)
        else:
            assert result.summary() == baseline[0], "summaries diverged"
            assert algorithm.backoff_choices == baseline[1]
    print("all three cores bit-identical, counters exact")
    print()

    # The dynamic policy runs on the object core...
    dynamic = run_experiment(
        "phase_sampler", WORKLOAD, accesses_per_core=SCALE
    )
    print(
        "phase_sampler on core=object: exec %d cycles"
        % dynamic.exec_time
    )
    # ...and the jit core declines it with the real reason.
    try:
        run_experiment(
            "phase_sampler",
            WORKLOAD,
            accesses_per_core=SCALE,
            core="jit",
        )
    except SoaUnsupportedError as error:
        print("core=jit declined: %s" % error)
    else:
        raise AssertionError("core=jit accepted a dynamic policy")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Hybrid Con/Agg switching - the adaptive scheme the paper envisions.

Section 6.1.5: "both Superset Con and Superset Agg use the same
Supplier Predictor.  The only difference is the action taken on a
positive prediction.  Therefore, we envision an adaptive system where
the action is chosen dynamically.  Typically, the action would be that
of Superset Agg.  However, if the system needs to save energy, it
would use the action of Superset Con."

This example runs the same workload three ways - pure Agg, pure Con,
and the hybrid driven by a simple battery-style energy budget probe -
and shows the hybrid landing between the two.

Run:  python examples/hybrid_power_mode.py
"""

from __future__ import annotations

from repro import (
    RingMultiprocessor,
    build_algorithm,
    build_workload,
    default_machine,
)


class EnergyGovernor:
    """Toy power manager: flips to energy-saving mode once the run has
    spent its energy budget, the way a thermal/battery limit would."""

    def __init__(self, budget_nj: float) -> None:
        self.budget_nj = budget_nj
        self.system = None

    def attach(self, system: RingMultiprocessor) -> None:
        self.system = system

    def pressed(self) -> bool:
        if self.system is None:
            return False
        return self.system.energy.total > self.budget_nj


def run(mode: str, workload, budget_nj: float = 0.0):
    machine = default_machine(algorithm="superset_hybrid",
                              cores_per_cmp=workload.cores_per_cmp)
    if mode == "hybrid":
        algorithm = build_algorithm("superset_hybrid")
        governor = EnergyGovernor(budget_nj)
        algorithm.set_energy_pressure(governor.pressed)
    else:
        algorithm = build_algorithm(mode)
        governor = None
    system = RingMultiprocessor(machine, algorithm, workload,
                                warmup_fraction=0.3)
    if governor is not None:
        governor.attach(system)
    result = system.run()
    return result, algorithm


def main() -> None:
    workload = build_workload("specweb", accesses_per_core=2500)

    agg_result, _ = run("superset_agg", workload)
    con_result, _ = run("superset_con", workload)
    # Budget: half of what pure Agg spends - the governor must switch.
    budget = agg_result.total_energy * 0.5
    hybrid_result, hybrid = run("hybrid", workload, budget_nj=budget)

    header = "%-14s %14s %14s %12s" % (
        "mode", "exec (cyc)", "energy (nJ)", "agg share"
    )
    print(header)
    print("-" * len(header))
    total_choices = (
        hybrid.aggressive_choices + hybrid.conservative_choices
    )
    rows = [
        ("superset_agg", agg_result, 1.0),
        ("hybrid", hybrid_result,
         hybrid.aggressive_choices / max(total_choices, 1)),
        ("superset_con", con_result, 0.0),
    ]
    for name, result, share in rows:
        print("%-14s %14d %14.0f %11.0f%%" % (
            name, result.exec_time, result.total_energy, 100 * share))

    print()
    print("hybrid switched to conservative mode after spending "
          "%.0f nJ (budget %.0f nJ)" % (hybrid_result.total_energy,
                                        budget))
    assert (
        con_result.total_energy
        <= hybrid_result.total_energy * 1.05
    )


if __name__ == "__main__":
    main()

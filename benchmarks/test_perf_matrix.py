"""Matrix-level performance benchmarks: wall time, events/sec, and
the serial-vs-parallel speedup of the experiment fan-out.

These are the numbers future PRs track to keep the perf trajectory
honest:

* ``matrix_seconds`` / ``events_per_second`` - end-to-end harness
  throughput over a benchmark matrix (trace generation, simulation,
  result assembly).
* ``parallel_seconds`` / ``speedup`` - the same matrix through the
  ``--jobs 4`` process pool.  On a multi-core host the pool must beat
  serial by >= 2x; on starved CI boxes (cpu_count < 4) the speedup
  assertion is skipped but the equality check still runs, because
  determinism is not allowed to depend on the host.

Scale is kept small (the figure benches cover paper scale); what
matters here is the *ratio*, which is stable across scales because
every cell is embarrassingly parallel.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.harness.experiments import MAIN_ALGORITHMS
from repro.harness.parallel import RunSpec, run_specs
from repro.harness.result_cache import ResultCache

#: The benchmark matrix: all seven algorithms on the two 8-core
#: workloads (splash2's 32 cores would dominate the wall time without
#: changing the parallelism story).
BENCH_SPECS = [
    RunSpec(algorithm, workload, accesses_per_core=150,
            warmup_fraction=0.35)
    for workload in ("specjbb", "specweb")
    for algorithm in MAIN_ALGORITHMS
]


def _timed(jobs):
    start = time.perf_counter()
    results = run_specs(BENCH_SPECS, jobs=jobs)
    return results, time.perf_counter() - start


def test_matrix_serial_walltime(benchmark):
    def run():
        return _timed(jobs=1)

    results, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    events = sum(result.events for result in results)
    assert events > 10_000
    benchmark.extra_info["matrix_cells"] = len(BENCH_SPECS)
    benchmark.extra_info["matrix_seconds"] = round(elapsed, 3)
    benchmark.extra_info["events_per_second"] = round(events / elapsed)


def test_matrix_parallel_speedup(benchmark):
    serial_results, serial_seconds = _timed(jobs=1)

    def run():
        return _timed(jobs=4)

    parallel_results, parallel_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Identical results, always - parallelism must only buy time.
    for expected, actual in zip(serial_results, parallel_results):
        assert actual.stats == expected.stats
        assert actual.exec_time == expected.exec_time
        assert actual.energy == expected.energy

    speedup = serial_seconds / parallel_seconds
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["parallel_seconds"] = round(parallel_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["cpu_count"] = os.cpu_count()

    if (os.cpu_count() or 1) < 4:
        pytest.skip(
            "host has %s CPU(s); speedup x%.2f recorded but not "
            "asserted" % (os.cpu_count(), speedup)
        )
    assert speedup >= 2.0, (
        "jobs=4 speedup x%.2f below the 2x floor "
        "(serial %.2fs, parallel %.2fs)"
        % (speedup, serial_seconds, parallel_seconds)
    )


def test_matrix_warm_cache_walltime(benchmark, tmp_path):
    """A warm persistent cache turns the matrix into pure I/O: zero
    simulations, and at least an order of magnitude faster."""
    cache = ResultCache(root=tmp_path / "cache")
    start = time.perf_counter()
    run_specs(BENCH_SPECS, jobs=1, cache=cache)
    cold_seconds = time.perf_counter() - start
    assert cache.stores == len(BENCH_SPECS)

    warm_cache = ResultCache(root=tmp_path / "cache")

    def run():
        start = time.perf_counter()
        run_specs(BENCH_SPECS, jobs=1, cache=warm_cache)
        return time.perf_counter() - start

    warm_seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    assert warm_cache.misses == 0
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 3)
    benchmark.extra_info["warm_seconds"] = round(warm_seconds, 3)
    assert warm_seconds < cold_seconds / 10

"""Ablation: ring-size scaling (4 to 16 CMPs).

The paper positions embedded-ring snooping as appropriate for
medium-range machines and notes it is "not highly scalable".  This
bench quantifies that: Lazy's snoop latency grows with N (a snoop per
hop), so the gap between Lazy and the filtered algorithms widens with
ring size, while Eager's energy overhead stays ~2x at any N.
"""

from __future__ import annotations

import dataclasses

import pytest

from benchmarks.conftest import run_once
from repro.config import DataNetworkConfig, default_machine
from repro.core.algorithms import build_algorithm
from repro.sim.system import RingMultiprocessor
from repro.workloads.synthetic import SharingProfile, generate_workload

TORUS = {4: (2, 2), 8: (4, 2), 16: (4, 4)}


def profile_for(num_cmps: int) -> SharingProfile:
    return SharingProfile(
        name="scale-%d" % num_cmps,
        num_cores=num_cmps,
        cores_per_cmp=1,
        accesses_per_core=1500,
        p_shared=0.35,
        p_cold=0.05,
        shared_lines=1024,
        private_lines=1024,
        write_fraction_shared=0.15,
        migratory_fraction=0.1,
        burst_mean=4.0,
        prewarm_fraction=1.0,
        zipf_exponent=0.8,
        private_zipf_exponent=1.2,
        think_mean=150.0,
        seed=5,
    )


def run(algorithm_name: str, num_cmps: int):
    workload = generate_workload(profile_for(num_cmps))
    machine = default_machine(
        algorithm=algorithm_name,
        num_cmps=num_cmps,
        cores_per_cmp=1,
        data_network=DataNetworkConfig(torus_shape=TORUS[num_cmps]),
    )
    system = RingMultiprocessor(
        machine, build_algorithm(algorithm_name), workload,
        warmup_fraction=0.3,
    )
    return system.run()


def test_ring_size_scaling(benchmark):
    def build():
        table = {}
        for n in (4, 8, 16):
            table[n] = {
                name: run(name, n)
                for name in ("lazy", "eager", "superset_con")
            }
        return table

    table = run_once(benchmark, build)

    print()
    print("%4s %18s %18s %16s" % (
        "N", "Lazy snoops/req", "Con snoops/req", "Eager E vs Lazy"))
    for n, row in table.items():
        print(
            "%4d %18.2f %18.2f %15.2fx"
            % (
                n,
                row["lazy"].stats.snoops_per_read_request,
                row["superset_con"].stats.snoops_per_read_request,
                row["eager"].total_energy / row["lazy"].total_energy,
            )
        )

    # Lazy's snoop count grows with the ring; the filtered algorithm's
    # grows far slower.
    lazy_growth = (
        table[16]["lazy"].stats.snoops_per_read_request
        / table[4]["lazy"].stats.snoops_per_read_request
    )
    con_growth = (
        table[16]["superset_con"].stats.snoops_per_read_request
        / max(table[4]["superset_con"].stats.snoops_per_read_request,
              1e-9)
    )
    assert lazy_growth > 2.0
    assert con_growth < lazy_growth

    # Eager's energy overhead is ~2x at every size.
    for n, row in table.items():
        ratio = row["eager"].total_energy / row["lazy"].total_energy
        assert 1.4 < ratio < 2.2, n


def test_latency_grows_linearly_for_lazy(benchmark):
    def build():
        return {
            n: run("lazy", n).stats.mean_supplier_latency
            for n in (4, 8, 16)
        }

    latency = run_once(benchmark, build)
    print()
    print("Lazy mean supplier latency by ring size:", {
        n: round(v) for n, v in latency.items()})
    # Supplier distance scales with N/2, each hop pays hop+snoop.
    assert latency[8] > latency[4] * 1.5
    assert latency[16] > latency[8] * 1.5

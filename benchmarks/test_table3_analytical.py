"""Table 3: analytical characterization of the Flexible Snooping
algorithms (Subset, Superset Con, Superset Agg, Exact).

Regenerates the table at representative predictor quality points and
asserts its qualitative content: the latency column (low for all but
Superset Con, which is medium), the snoop column (Lazy + a*FN for
Subset, 1 + a*FP for the Supersets, 1 for Exact), and the message
column (1 for Con/Exact, 1-2 for Subset/Agg).
"""

from __future__ import annotations

import pytest

from repro.core.analytical import (
    AnalyticalParams,
    expected_latency,
    expected_messages,
    expected_snoops,
    snoops_lazy,
    table3,
)
from benchmarks.conftest import run_once

N = 8


def build_table():
    # Moderate predictor imperfection, as measured in Figure 11.
    params = AnalyticalParams(num_nodes=N, fn=0.05, fp=0.25)
    return params, table3(params)


def test_table3(benchmark):
    params, rows = run_once(benchmark, build_table)

    print()
    print(
        "Table 3 (N = %d, fn = %.2f, fp = %.2f)"
        % (N, params.fn, params.fp)
    )
    print(
        "%-14s %18s %14s %12s"
        % ("", "latency (cycles)", "snoops/request", "msgs/request")
    )
    for name, row in rows.items():
        print(
            "%-14s %18.1f %14.2f %12.2f"
            % (name, row["latency"], row["snoops"], row["messages"])
        )

    subset = rows["subset"]
    con = rows["superset_con"]
    agg = rows["superset_agg"]
    exact = rows["exact"]

    # Snoops column.
    assert subset["snoops"] > snoops_lazy(params) - 1e-9  # Lazy + a*FN
    assert con["snoops"] == pytest.approx(1 + params.fp * (N / 2 - 1))
    assert agg["snoops"] == pytest.approx(1 + params.fp * (N - 2))
    assert agg["snoops"] > con["snoops"]
    assert exact["snoops"] == 1.0

    # Messages column: 1 for Con and Exact, 1-2 for Subset and Agg.
    assert con["messages"] == 1.0
    assert exact["messages"] == 1.0
    assert 1.0 < subset["messages"] < 2.0
    assert 1.0 < agg["messages"] < 2.0

    # Latency column: Superset Con is the only "medium" one.
    low = {
        name: rows[name]["latency"]
        for name in ("subset", "superset_agg", "exact")
    }
    for name, value in low.items():
        assert con["latency"] > value, name
    # And all are far below Lazy's latency.
    lazy_latency = expected_latency("lazy", params)
    assert con["latency"] < lazy_latency


def test_table3_degenerate_points(benchmark):
    """Sanity: with perfect predictors every algorithm collapses to
    the Oracle point of Table 1."""

    def build():
        params = AnalyticalParams(num_nodes=N, fn=0.0, fp=0.0)
        return {
            name: (
                expected_snoops(name, params),
                expected_messages(name, params),
            )
            for name in ("superset_con", "superset_agg", "exact")
        }

    rows = run_once(benchmark, build)
    for name, (snoops, messages) in rows.items():
        assert snoops == 1.0, name
        assert messages <= 2.0 - 1.0 / N

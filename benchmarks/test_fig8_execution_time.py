"""Figure 8: execution time normalized to Lazy.

Shape assertions (the paper's findings):

* Lazy is the slowest algorithm on every workload.
* Most algorithms track Eager; Superset Agg is essentially the
  fastest practical algorithm and stays very close to Oracle.
* Superset Con is the slightly slower Flexible Snooping algorithm
  (false positives serialize snoops into the request path).
* Exact is slower than Superset Agg on the sharing-heavy workloads
  (downgrades move supplies to memory).
* The overall improvement over Lazy is in the paper's range: about
  6-14% for the fastest algorithm.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.harness.experiments import format_by_workload


def test_fig8(benchmark, matrix):
    table = run_once(benchmark, matrix.fig8_execution_time)
    print()
    print(
        format_by_workload(
            "Figure 8: execution time (normalized to Lazy)",
            table,
            fmt="%6.3f",
        )
    )

    for workload, row in table.items():
        # Lazy is the slowest.
        for name, value in row.items():
            assert value <= 1.02, (workload, name)
        # Oracle is the floor (within noise).
        assert row["oracle"] <= min(row.values()) + 0.02
        # Superset Agg tracks Eager and Oracle closely.
        assert row["superset_agg"] == pytest.approx(row["eager"], abs=0.03)
        assert row["superset_agg"] <= row["oracle"] + 0.04
        # Superset Con is the slower Flexible Snooping algorithm.
        assert row["superset_con"] >= row["superset_agg"]

    splash, web = table["splash2"], table["specweb"]
    # Paper: Superset Agg cuts 14% / 13% / 6% off Lazy.
    assert 0.80 < splash["superset_agg"] < 0.92
    assert 0.90 < web["superset_agg"] < 0.98
    # Exact pays for downgrades on the cache-to-cache heavy workload.
    assert splash["exact"] >= splash["superset_agg"]

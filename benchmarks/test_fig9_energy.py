"""Figure 9: energy consumed by read and write snoop requests and
replies, normalized to Lazy.

Shape assertions (the paper's findings):

* Eager consumes roughly 80% more energy than Lazy (twice the
  messages, all-node snooping).
* Subset and Superset Agg also exceed Lazy (extra messages), but
  Superset Agg undercuts Eager by roughly 9-17%.
* Superset Con is the cheapest practical algorithm: at or slightly
  below Lazy (same single message, far fewer snoops, predictor energy
  eating most of the savings), i.e. dramatically below Eager.
* The Superset Con vs Superset Agg spread is large (the paper's
  36-42%), which is the energy/performance trade the paper proposes
  switching between dynamically.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.harness.experiments import format_by_workload


def test_fig9(benchmark, matrix):
    table = run_once(benchmark, matrix.fig9_energy)
    print()
    print(
        format_by_workload(
            "Figure 9: snoop-traffic energy (normalized to Lazy)",
            table,
            fmt="%6.3f",
        )
    )

    for workload, row in table.items():
        # Eager is the (practical) energy ceiling.
        assert 1.5 < row["eager"] < 2.2, workload
        # Superset Agg undercuts Eager where the predictor filters
        # (SPLASH-2, SPECweb).  On SPECjbb the streaming working set
        # saturates the Bloom filter and the Exclude cache thrashes
        # (the paper observes the same thrashing), so Agg only reaches
        # parity with Eager there - a documented deviation, see
        # EXPERIMENTS.md.
        agg_vs_eager = row["superset_agg"] / row["eager"]
        if workload == "specjbb":
            assert agg_vs_eager < 1.08, workload
        else:
            assert agg_vs_eager < 0.98, workload
        # Superset Con is around Lazy, far below Eager.
        assert row["superset_con"] < 1.1, workload
        con_vs_eager = row["superset_con"] / row["eager"]
        assert con_vs_eager < 0.65, workload
        # The Con/Agg spread is the paper's headline energy saving.
        con_vs_agg = row["superset_con"] / row["superset_agg"]
        assert con_vs_agg < 0.75, workload
        # Subset costs more than Lazy (extra messages + snoops).
        assert row["subset"] > 1.1, workload

    # Headline claim check (Section 6.1.5): Superset Agg saves energy
    # vs Eager on the workload classes where the predictor filters
    # (see the SPECjbb note above).
    savings = {
        w: 1 - table[w]["superset_agg"] / table[w]["eager"]
        for w in table
    }
    print(
        "SupersetAgg vs Eager energy savings: "
        + ", ".join(
            "%s %.0f%%" % (w, 100 * s) for w, s in savings.items()
        )
    )
    assert savings["splash2"] > 0.02
    assert savings["specweb"] > 0.02
    assert savings["specjbb"] > -0.08

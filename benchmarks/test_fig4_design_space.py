"""Figure 4: the design space of Flexible Snooping algorithms.

Figure 4(b) places each algorithm in a plane of *unloaded snoop
request latency until the supplier is found* (x) versus *snoop
operations per request* (y):

* Eager sits at low latency / maximal snoops (top of the Y axis).
* Lazy sits at high latency / medium snoops (right).
* Oracle sits at the origin (low latency, one snoop).
* Subset joins Eager's latency at Lazy-or-more snoops.
* The Superset pair sits near the origin, Con slightly right of Agg
  (false positives delay Con's requests) and slightly below it
  (fewer checked nodes).
* Exact sits at the origin with Oracle.

This bench reconstructs the chart from measured data (SPLASH-2
profile) and asserts those placements.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once

WORKLOAD = "splash2"


def test_fig4(benchmark, matrix):
    def collect():
        points = {}
        for algorithm in matrix.algorithms:
            result = matrix.result(algorithm, WORKLOAD)
            points[algorithm] = (
                result.stats.mean_supplier_latency,
                result.stats.snoops_per_read_request,
            )
        return points

    points = run_once(benchmark, collect)

    print()
    print("Figure 4(b): latency-to-supplier (x) vs snoops/request (y)")
    for algorithm, (latency, snoops) in sorted(
        points.items(), key=lambda kv: kv[1][0]
    ):
        print("  %-14s x=%7.1f  y=%5.2f" % (algorithm, latency, snoops))

    lazy, eager = points["lazy"], points["eager"]
    oracle, subset = points["oracle"], points["subset"]
    con, agg = points["superset_con"], points["superset_agg"]
    exact = points["exact"]

    # Y axis: Eager snoops the most; Oracle/Exact the least.
    assert eager[1] == max(p[1] for p in points.values())
    assert oracle[1] <= min(lazy[1], eager[1], subset[1], con[1],
                            agg[1])

    # X axis: Lazy has the worst latency-to-supplier by far.
    assert lazy[0] == max(p[0] for p in points.values())
    assert lazy[0] > 1.5 * eager[0]

    # Eager, Oracle, Subset and Agg share the low-latency column.
    for name in ("oracle", "subset", "superset_agg"):
        assert points[name][0] == pytest.approx(eager[0], rel=0.25), name

    # Superset Con sits to the right of Agg (FP snoops delay it)...
    assert con[0] > agg[0]
    # ...but far left of Lazy.
    assert con[0] < 0.7 * lazy[0]

    # Subset snoops at least as much as Lazy; the Supersets much less.
    assert subset[1] >= lazy[1] * 0.9
    assert agg[1] < 0.8 * lazy[1]

    # Exact hugs the Oracle corner.
    assert exact[0] == pytest.approx(oracle[0], rel=0.2)
    assert exact[1] == pytest.approx(oracle[1], abs=0.2)

"""Performance microbenchmarks of the simulator substrate itself.

Unlike the figure benches (which run once and assert shapes), these
use pytest-benchmark conventionally to keep an eye on simulator
throughput: the event engine and the end-to-end events-per-second of
a small system run.
"""

from __future__ import annotations

import time

from repro.config import CacheConfig, default_machine
from repro.core.algorithms import build_algorithm
from repro.harness.parallel import RunSpec, run_specs
from repro.sim.engine import EventEngine
from repro.sim.system import RingMultiprocessor
from repro.workloads.synthetic import SharingProfile, generate_workload


def test_engine_throughput(benchmark):
    """Schedule + drain 10k events."""

    def run():
        engine = EventEngine()
        count = [0]

        def tick():
            count[0] += 1

        for i in range(10_000):
            engine.schedule(i % 97, tick)
        engine.run()
        return count[0]

    processed = benchmark(run)
    assert processed == 10_000


def test_engine_nested_scheduling(benchmark):
    """Event chains: each callback schedules the next."""

    def run():
        engine = EventEngine()
        remaining = [5_000]

        def chain():
            if remaining[0] > 0:
                remaining[0] -= 1
                engine.schedule(3, chain)

        engine.schedule(0, chain)
        engine.run()
        return engine.events_processed

    assert benchmark(run) == 5_001


def test_engine_cancel_churn(benchmark):
    """Schedule/cancel churn: most events die before firing.

    Exercises the lazy compaction path - without it, the heap fills
    with cancelled entries and every pop pays for the corpses.
    """

    def run():
        engine = EventEngine()
        fired = [0]

        def tick():
            fired[0] += 1

        handles = []
        for i in range(10_000):
            handles.append(engine.schedule(1 + i % 211, tick))
            if i % 5:  # cancel 80% of everything scheduled
                handles[-1].cancel()
        engine.run()
        assert engine.pending == 0
        return fired[0]

    assert benchmark(run) == 2_000


def test_engine_pending_polling(benchmark):
    """pending is polled per iteration - it must be O(1), not a heap
    scan (a 5k-event queue polled 5k times would be 25M touches)."""

    def run():
        engine = EventEngine()
        for i in range(5_000):
            engine.schedule(i, lambda: None)
        observed = 0
        while engine.pending:
            observed += engine.pending
            engine.step()
        return observed

    assert benchmark(run) > 0


def test_matrix_end_to_end_events_per_second(benchmark):
    """End-to-end simulation throughput of a small harness matrix.

    The recorded ``events_per_second`` is the trajectory metric future
    PRs compare against (see also benchmarks/test_perf_matrix.py for
    the serial-vs-parallel wall-time comparison).
    """
    specs = [
        RunSpec(algorithm, "specjbb", accesses_per_core=150,
                warmup_fraction=0.35)
        for algorithm in ("lazy", "eager", "superset_agg")
    ]

    def run():
        start = time.perf_counter()
        results = run_specs(specs, jobs=1)
        elapsed = time.perf_counter() - start
        return sum(result.events for result in results), elapsed

    events, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert events > 1_000
    benchmark.extra_info["events"] = events
    benchmark.extra_info["events_per_second"] = round(events / elapsed)


def _small_workload():
    return generate_workload(
        SharingProfile(
            name="perf",
            num_cores=8,
            cores_per_cmp=1,
            accesses_per_core=300,
            p_shared=0.4,
            p_cold=0.1,
            shared_lines=256,
            private_lines=256,
            seed=3,
        )
    )


def test_system_throughput(benchmark):
    """End-to-end simulation rate of a small 8-CMP run."""

    def run():
        machine = default_machine(
            algorithm="superset_agg",
            cores_per_cmp=1,
            cache=CacheConfig(num_lines=512, associativity=8),
        )
        system = RingMultiprocessor(
            machine, build_algorithm("superset_agg"), _small_workload()
        )
        return system.run().events

    events = benchmark(run)
    assert events > 1_000

"""Performance microbenchmarks of the simulator substrate itself.

Unlike the figure benches (which run once and assert shapes), these
use pytest-benchmark conventionally to keep an eye on simulator
throughput: the event engine and the end-to-end events-per-second of
a small system run.
"""

from __future__ import annotations

from repro.config import CacheConfig, default_machine
from repro.core.algorithms import build_algorithm
from repro.sim.engine import EventEngine
from repro.sim.system import RingMultiprocessor
from repro.workloads.synthetic import SharingProfile, generate_workload


def test_engine_throughput(benchmark):
    """Schedule + drain 10k events."""

    def run():
        engine = EventEngine()
        count = [0]

        def tick():
            count[0] += 1

        for i in range(10_000):
            engine.schedule(i % 97, tick)
        engine.run()
        return count[0]

    processed = benchmark(run)
    assert processed == 10_000


def test_engine_nested_scheduling(benchmark):
    """Event chains: each callback schedules the next."""

    def run():
        engine = EventEngine()
        remaining = [5_000]

        def chain():
            if remaining[0] > 0:
                remaining[0] -= 1
                engine.schedule(3, chain)

        engine.schedule(0, chain)
        engine.run()
        return engine.events_processed

    assert benchmark(run) == 5_001


def _small_workload():
    return generate_workload(
        SharingProfile(
            name="perf",
            num_cores=8,
            cores_per_cmp=1,
            accesses_per_core=300,
            p_shared=0.4,
            p_cold=0.1,
            shared_lines=256,
            private_lines=256,
            seed=3,
        )
    )


def test_system_throughput(benchmark):
    """End-to-end simulation rate of a small 8-CMP run."""

    def run():
        machine = default_machine(
            algorithm="superset_agg",
            cores_per_cmp=1,
            cache=CacheConfig(num_lines=512, associativity=8),
        )
        system = RingMultiprocessor(
            machine, build_algorithm("superset_agg"), _small_workload()
        )
        return system.run().events

    events = benchmark(run)
    assert events > 1_000

"""Ablation: technology-trend sweep of the snoop-time / hop-latency
ratio.

The paper's introduction argues the problem gets worse as technology
advances: "long latencies are less tolerable to multi-GHz
processors".  Lazy pays one snoop *per hop*, so its disadvantage
scales with the snoop time; the forwarding algorithms pay one snoop
*total*.  This bench sweeps the snoop time around the paper's
55-cycle point and locates the trend: the Lazy-to-SupersetAgg gap
widens monotonically with snoop cost, and collapses when snoops are
nearly free.
"""

from __future__ import annotations

import dataclasses

import pytest

from benchmarks.conftest import run_once
from repro.config import RingConfig, default_machine
from repro.core.algorithms import build_algorithm
from repro.sim.system import RingMultiprocessor
from repro.workloads.profiles import build_workload

SNOOP_TIMES = (5, 25, 55, 110)


def run(algorithm_name: str, snoop_time: int):
    workload = build_workload("splash2", accesses_per_core=800)
    machine = default_machine(
        algorithm=algorithm_name,
        cores_per_cmp=workload.cores_per_cmp,
    )
    machine = machine.replace(
        ring=dataclasses.replace(machine.ring, snoop_time=snoop_time)
    )
    system = RingMultiprocessor(
        machine,
        build_algorithm(algorithm_name),
        workload,
        warmup_fraction=0.3,
    )
    return system.run()


def test_snoop_time_sweep(benchmark):
    def build():
        table = {}
        for snoop_time in SNOOP_TIMES:
            lazy = run("lazy", snoop_time)
            agg = run("superset_agg", snoop_time)
            table[snoop_time] = {
                "gap": 1 - agg.exec_time / lazy.exec_time,
                "lazy_latency": lazy.stats.mean_supplier_latency,
                "agg_latency": agg.stats.mean_supplier_latency,
            }
        return table

    table = run_once(benchmark, build)

    print()
    print(
        "%10s %12s %16s %16s"
        % ("snoop cyc", "Agg gap", "Lazy supl. lat", "Agg supl. lat")
    )
    for snoop_time, row in table.items():
        print(
            "%10d %11.1f%% %16.1f %16.1f"
            % (
                snoop_time,
                100 * row["gap"],
                row["lazy_latency"],
                row["agg_latency"],
            )
        )

    gaps = [table[s]["gap"] for s in SNOOP_TIMES]
    # The gap widens monotonically with snoop cost.
    assert gaps == sorted(gaps)
    # Nearly-free snoops: filtering buys almost nothing.
    assert gaps[0] < 0.05
    # Expensive snoops: the paper's problem statement in full force.
    assert gaps[-1] > gaps[2] > 0.05

    # Mechanism check: Lazy's supplier latency grows with snoop time
    # about N/2 times faster than Agg's.
    lazy_growth = (
        table[110]["lazy_latency"] - table[5]["lazy_latency"]
    )
    agg_growth = table[110]["agg_latency"] - table[5]["agg_latency"]
    assert lazy_growth > 2.5 * agg_growth

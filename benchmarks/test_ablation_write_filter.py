"""Ablation: write-snoop filtering with a presence predictor.

Section 5.3 notes that write snoops cannot use the Supplier
Predictors because writes must invalidate *all* copies - they "would
need a predictor of line presence".  This bench implements that
predictor (a per-CMP counting Bloom filter over resident lines, the
JETTY construction) and measures how much of the write-snoop work it
removes on the paper's workload classes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.config import default_machine
from repro.core.algorithms import build_algorithm
from repro.sim.system import RingMultiprocessor
from repro.workloads.profiles import build_workload


def run(workload_name: str, filter_writes: bool, scale: int = 1200):
    workload = build_workload(workload_name, accesses_per_core=scale)
    machine = default_machine(
        algorithm="superset_con",
        cores_per_cmp=workload.cores_per_cmp,
        filter_write_snoops=filter_writes,
    )
    system = RingMultiprocessor(
        machine,
        build_algorithm("superset_con"),
        workload,
        warmup_fraction=0.3,
    )
    return system.run()


def test_write_filtering(benchmark):
    def build():
        table = {}
        for workload in ("splash2", "specjbb"):
            table[workload] = {
                flag: run(workload, flag) for flag in (False, True)
            }
        return table

    table = run_once(benchmark, build)

    print()
    print(
        "%-9s %16s %16s %10s"
        % ("workload", "write snoops", "filtered", "energy")
    )
    for workload, runs in table.items():
        base = runs[False]
        filt = runs[True]
        snoops_base = base.stats.write_snoops
        snoops_filtered = filt.stats.write_snoops
        energy_ratio = filt.total_energy / base.total_energy
        print(
            "%-9s %8d -> %5d %15.0f%% %9.3f"
            % (
                workload,
                snoops_base,
                snoops_filtered,
                100 * (1 - snoops_filtered / max(snoops_base, 1)),
                energy_ratio,
            )
        )

        # Filtering must never increase write snoops and must preserve
        # the read-side behaviour.
        assert snoops_filtered <= snoops_base
        assert filt.stats.read_snoops == pytest.approx(
            base.stats.read_snoops, rel=0.1
        )

    # SPECjbb (no sharing: written lines are cached almost nowhere
    # else) filters the vast majority of write snoops.
    jbb = table["specjbb"]
    reduction = 1 - (
        jbb[True].stats.write_snoops
        / max(jbb[False].stats.write_snoops, 1)
    )
    assert reduction > 0.5

"""Ablation: per-application SPLASH-2 breakdown.

The paper reports SPLASH-2 numbers as means over 11 applications;
this bench runs each application profile and checks that the
aggregate conclusions hold program by program, not just on average -
and that the per-app geometric mean of the speedup lands in the
paper's band.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.config import default_machine
from repro.core.algorithms import build_algorithm
from repro.sim.system import RingMultiprocessor
from repro.workloads.splash2_apps import (
    SPLASH2_APPS,
    build_app_workload,
    geometric_mean,
)

SCALE = 400


def run(algorithm_name: str, app: str):
    workload = build_app_workload(app, accesses_per_core=SCALE)
    machine = default_machine(
        algorithm=algorithm_name, cores_per_cmp=4
    )
    system = RingMultiprocessor(
        machine, build_algorithm(algorithm_name), workload,
        warmup_fraction=0.3,
    )
    return system.run()


def test_per_app_breakdown(benchmark):
    def build():
        table = {}
        for app in SPLASH2_APPS:
            table[app] = {
                name: run(name, app)
                for name in ("lazy", "superset_agg")
            }
        return table

    table = run_once(benchmark, build)

    print()
    print("%-16s %9s %9s %9s" % ("app", "supplier", "Lazy sn.",
                                 "Agg/Lazy"))
    ratios = []
    for app, runs in table.items():
        lazy, agg = runs["lazy"], runs["superset_agg"]
        ratio = agg.exec_time / lazy.exec_time
        ratios.append(ratio)
        print(
            "%-16s %8.0f%% %9.2f %9.3f"
            % (
                app,
                100 * lazy.stats.supplier_found_fraction,
                lazy.stats.snoops_per_read_request,
                ratio,
            )
        )
        # Program-by-program: Superset Agg never loses to Lazy, and
        # always filters snoops.
        assert ratio < 1.0, app
        assert (
            agg.stats.snoops_per_read_request
            < lazy.stats.snoops_per_read_request
        ), app

    mean = geometric_mean(ratios)
    print("geomean %.3f" % mean)
    # The paper's SPLASH-2 mean improvement is 14%; per-app profiles
    # scatter around it.
    assert 0.75 < mean < 0.95

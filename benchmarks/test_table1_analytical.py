"""Table 1: analytical characterization of Lazy, Eager and Oracle.

Regenerates the paper's Table 1 rows (snoop request latency, average
snoop operations per request, average messages per request) from the
closed-form models, and validates each entry against the paper's
expressions: Lazy ~ (N-1)/2 ~ N/2 snoops and 1 message, Eager N-1
snoops and ~2 messages, Oracle 1 snoop and 1 message.
"""

from __future__ import annotations

import pytest

from repro.core.analytical import AnalyticalParams, table1
from benchmarks.conftest import run_once

N = 8


def build_table():
    return table1(AnalyticalParams(num_nodes=N))


def test_table1(benchmark):
    rows = run_once(benchmark, build_table)

    print()
    print("Table 1 (N = %d, supplier always present)" % N)
    print(
        "%-8s %18s %14s %12s"
        % ("", "latency (cycles)", "snoops/request", "msgs/request")
    )
    for name, row in rows.items():
        print(
            "%-8s %18.1f %14.2f %12.2f"
            % (name, row["latency"], row["snoops"], row["messages"])
        )

    lazy, eager, oracle = rows["lazy"], rows["eager"], rows["oracle"]

    # Snoops: Lazy ~ half the ring, Eager all N-1, Oracle exactly 1.
    assert lazy["snoops"] == pytest.approx(N / 2)
    assert eager["snoops"] == N - 1
    assert oracle["snoops"] == 1.0

    # Messages: Lazy and Oracle 1; Eager just under 2.
    assert lazy["messages"] == 1.0
    assert oracle["messages"] == 1.0
    assert eager["messages"] == pytest.approx(2.0 - 1.0 / N)

    # Latency: Lazy high (snoop on every hop), Eager == Oracle low.
    assert lazy["latency"] > eager["latency"]
    assert eager["latency"] == oracle["latency"]

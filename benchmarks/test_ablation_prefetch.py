"""Ablation: the memory prefetch-on-snoop heuristic (Section 2.2).

The paper's machine may initiate a DRAM prefetch when the snoop
request passes the line's home node, cutting the remote round-trip
from 710 to 312 cycles.  This bench quantifies the heuristic on the
memory-bound workload (SPECjbb-like), where most ring reads fall
through to memory.
"""

from __future__ import annotations

import dataclasses

import pytest

from benchmarks.conftest import run_once
from repro.config import MemoryConfig, default_machine
from repro.core.algorithms import build_algorithm
from repro.sim.system import RingMultiprocessor
from repro.workloads.profiles import build_workload


def run(prefetch: bool):
    workload = build_workload("specjbb", accesses_per_core=2500)
    machine = default_machine(algorithm="lazy", cores_per_cmp=1)
    machine = machine.replace(
        memory=dataclasses.replace(
            machine.memory, prefetch_on_snoop=prefetch
        )
    )
    system = RingMultiprocessor(
        machine, build_algorithm("lazy"), workload, warmup_fraction=0.3
    )
    return system.run()


def test_prefetch_on_snoop(benchmark):
    def build():
        return {flag: run(flag) for flag in (True, False)}

    results = run_once(benchmark, build)
    with_prefetch = results[True]
    without = results[False]

    print()
    print(
        "prefetch on : exec=%d  mean miss=%.0f cyc  prefetched=%d"
        % (
            with_prefetch.exec_time,
            with_prefetch.stats.mean_read_miss_latency,
            with_prefetch.stats.reads_prefetched,
        )
    )
    print(
        "prefetch off: exec=%d  mean miss=%.0f cyc"
        % (without.exec_time, without.stats.mean_read_miss_latency)
    )

    # The heuristic fires on remote memory reads...
    assert with_prefetch.stats.reads_prefetched > 0
    assert without.stats.reads_prefetched == 0
    # ...and shortens both miss latency and execution time on a
    # memory-bound workload.
    assert (
        with_prefetch.stats.mean_read_miss_latency
        < without.stats.mean_read_miss_latency
    )
    assert with_prefetch.exec_time < without.exec_time

"""Refresh the committed ``BENCH_<pr>.json`` perf snapshot.

This is the benchmark behind the repo-root perf trajectory files::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_snapshot.py

measures the serial fig8 matrix with :mod:`repro.harness.bench` (the
same code ``flexsnoop bench`` runs) and rewrites ``BENCH_02.json`` in
place.  ``git diff BENCH_02.json`` then shows exactly how the change
under test moved accesses/sec - commit the refreshed file with the
optimization, or investigate if the number went the wrong way.  Set
``FLEXSNOOP_BENCH_OUT`` to write the snapshot somewhere else (CI's
perf-smoke job does this to avoid dirtying the checkout).

The previous committed snapshot, when present, is loaded *before* the
rewrite and the new/old accesses-per-second ratio is recorded in
``extra_info`` - so the benchmark log preserves the comparison even
though the file on disk no longer does.
"""

from __future__ import annotations

import os

from repro.harness.bench import (
    SNAPSHOT_PR,
    load_snapshot,
    measure_matrix,
    write_snapshot,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SNAPSHOT_PATH = os.path.join(
    REPO_ROOT, "BENCH_%02d.json" % SNAPSHOT_PR
)


def test_perf_snapshot_emits_bench_json(benchmark):
    out_path = os.environ.get("FLEXSNOOP_BENCH_OUT", SNAPSHOT_PATH)
    previous = (
        load_snapshot(SNAPSHOT_PATH)
        if os.path.exists(SNAPSHOT_PATH)
        else None
    )

    snapshot = benchmark.pedantic(measure_matrix, rounds=1, iterations=1)

    assert snapshot.pr == SNAPSHOT_PR
    assert snapshot.accesses_per_sec > 0
    assert snapshot.events_per_sec > snapshot.accesses_per_sec
    write_snapshot(snapshot, out_path)

    benchmark.extra_info["pr"] = snapshot.pr
    benchmark.extra_info["accesses_per_sec"] = snapshot.accesses_per_sec
    benchmark.extra_info["events_per_sec"] = snapshot.events_per_sec
    benchmark.extra_info["matrix_wall_s"] = snapshot.matrix_wall_s
    benchmark.extra_info["snapshot_path"] = out_path
    if previous is not None:
        benchmark.extra_info["vs_committed"] = round(
            snapshot.accesses_per_sec / previous.accesses_per_sec, 3
        )

"""Shared fixtures for the benchmark suite.

Each benchmark module regenerates one of the paper's tables or
figures.  The expensive part - running the evaluation matrix - is
shared through a session-scoped :class:`ExperimentMatrix`, exactly as
the paper derives all its figures from one set of simulations.

Scale is controlled with ``--repro-scale`` (accesses per core).  The
default is chosen so the whole benchmark suite completes in a few
minutes while keeping the figure shapes stable.
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import ExperimentMatrix


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        type=int,
        default=1500,
        help="trace length (accesses per core) for figure benchmarks",
    )


@pytest.fixture(scope="session")
def matrix(request) -> ExperimentMatrix:
    scale = request.config.getoption("--repro-scale")
    return ExperimentMatrix(accesses_per_core=scale)


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark.

    Figure regeneration is minutes-scale; repeated rounds would add
    nothing statistically and blow the time budget.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)

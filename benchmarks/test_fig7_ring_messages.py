"""Figure 7: total read snoop requests and replies on the ring,
normalized to Lazy.

Shape assertions (the paper's findings):

* Eager generates nearly twice Lazy's messages (request + reply on
  every segment except the first).
* Superset Con and Exact stay at Lazy's single combined message.
* Oracle stays at one message.
* Subset and Superset Agg fall between Lazy and Eager.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.harness.experiments import format_by_workload


def test_fig7(benchmark, matrix):
    table = run_once(benchmark, matrix.fig7_read_messages)
    print()
    print(
        format_by_workload(
            "Figure 7: ring read messages (normalized to Lazy)",
            table,
            fmt="%6.3f",
        )
    )

    for workload, row in table.items():
        assert row["lazy"] == 1.0
        # Eager nearly doubles the traffic.
        assert 1.6 < row["eager"] <= 2.1, workload
        # Single-message algorithms track Lazy closely.
        for name in ("superset_con", "exact", "oracle"):
            assert row[name] == pytest.approx(1.0, abs=0.1), (
                workload,
                name,
            )
        # Split-capable algorithms sit between Lazy and Eager.
        for name in ("subset", "superset_agg"):
            assert 1.0 < row[name] <= row["eager"] + 0.05, (workload, name)

"""Figure 11: Supplier Predictor accuracy breakdown (true/false
positives/negatives), including the perfect-predictor reference.

Shape assertions (the paper's findings):

* The perfect predictor makes roughly four negative predictions per
  positive one on the sharing-heavy workloads (the supplier is found
  about five nodes out); on SPECjbb there is rarely a supplier at all.
* Subset predictors have no false positives; their false negatives
  shrink as the predictor grows and practically disappear at 8k.
* Superset predictors have no false negatives; false positives are
  significant (tens of percent) and hard to eliminate.
* Exact predictors have neither, but downgrades depress their
  true-positive fraction relative to the perfect predictor, more so
  for smaller predictors.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.harness.experiments import format_accuracy_table


def test_fig11(benchmark, matrix):
    table = run_once(benchmark, matrix.fig11_accuracy)
    print()
    print(format_accuracy_table(table))

    perfect = table["Perfect"]
    # Perfect predictor: only true outcomes.
    for workload, frac in perfect.items():
        assert frac["false_positive"] == 0.0
        assert frac["false_negative"] == 0.0

    # Supplier found ~5 hops away on the sharing-heavy workloads:
    # about 3-6 true negatives per true positive.
    for workload in ("splash2", "specweb"):
        frac = perfect[workload]
        ratio = frac["true_negative"] / frac["true_positive"]
        assert 2.5 < ratio < 8.0, (workload, ratio)
    # SPECjbb rarely has a supplier.
    assert perfect["specjbb"]["true_positive"] < 0.05

    # Subset: no false positives; false negatives shrink with size.
    for label in ("Sub512", "Sub2k", "Sub8k"):
        for workload, frac in table[label].items():
            assert frac["false_positive"] == 0.0, (label, workload)
    assert (
        table["Sub8k"]["splash2"]["false_negative"]
        <= table["Sub512"]["splash2"]["false_negative"]
    )
    assert table["Sub8k"]["splash2"]["false_negative"] < 0.02

    # Superset: no false negatives; false positives significant.
    for label in ("SupCy512", "SupCy2k", "SupCn2k"):
        for workload, frac in table[label].items():
            assert frac["false_negative"] == 0.0, (label, workload)
    assert table["SupCy2k"]["splash2"]["false_positive"] > 0.1

    # Exact: exact by construction.
    for label in ("Exa512", "Exa2k", "Exa8k"):
        for workload, frac in table[label].items():
            assert frac["false_positive"] == 0.0
            assert frac["false_negative"] == 0.0
    # Downgrades depress the TP fraction of the small Exact predictor
    # relative to the large one on the cache-to-cache heavy workload.
    assert (
        table["Exa512"]["splash2"]["true_positive"]
        <= table["Exa8k"]["splash2"]["true_positive"] + 1e-9
    )

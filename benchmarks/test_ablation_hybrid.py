"""Ablation: the adaptive Con/Agg hybrid of Section 6.1.5.

The paper stops at *envisioning* a system that dynamically switches
between Superset Agg (performance) and Superset Con (energy).  This
bench implements the switch with an energy-budget governor and shows
the hybrid interpolating between the two pure policies.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.config import default_machine
from repro.core.algorithms import build_algorithm
from repro.sim.system import RingMultiprocessor
from repro.workloads.profiles import build_workload

SCALE = 1500


def run_mode(mode: str, budget_fraction: float = 0.5):
    workload = build_workload("specweb", accesses_per_core=SCALE)
    machine = default_machine(
        algorithm="superset_hybrid",
        cores_per_cmp=workload.cores_per_cmp,
    )
    if mode == "hybrid":
        algorithm = build_algorithm("superset_hybrid")
        # First run Agg to size the budget.
        agg = run_mode("superset_agg")
        budget = agg.total_energy * budget_fraction

        holder = {}

        def pressed() -> bool:
            system = holder.get("system")
            return system is not None and system.energy.total > budget

        algorithm.set_energy_pressure(pressed)
        system = RingMultiprocessor(
            machine, algorithm, workload, warmup_fraction=0.3
        )
        holder["system"] = system
        return system.run()
    algorithm = build_algorithm(mode)
    system = RingMultiprocessor(
        machine, algorithm, workload, warmup_fraction=0.3
    )
    return system.run()


def test_hybrid_interpolates(benchmark):
    def build():
        return {
            mode: run_mode(mode)
            for mode in ("superset_agg", "hybrid", "superset_con")
        }

    results = run_once(benchmark, build)
    agg = results["superset_agg"]
    con = results["superset_con"]
    hybrid = results["hybrid"]

    print()
    print("%-14s %12s %14s" % ("mode", "exec", "energy (nJ)"))
    for mode, result in results.items():
        print(
            "%-14s %12d %14.0f" % (mode, result.exec_time,
                                   result.total_energy)
        )

    # Energy: hybrid lands between Con and Agg (within noise).
    assert hybrid.total_energy <= agg.total_energy * 1.02
    assert hybrid.total_energy >= con.total_energy * 0.98
    # Execution time: hybrid no slower than Con (within noise).
    assert hybrid.exec_time <= con.exec_time * 1.03

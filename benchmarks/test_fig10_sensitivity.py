"""Figure 10: sensitivity of execution time to the Supplier Predictor
size and organization.

The paper's finding: execution time is largely insensitive to the
predictor configuration - except Exact on SPLASH-2, where small
predictor caches cause many line downgrades and visibly hurt
performance.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once


def test_fig10(benchmark, matrix):
    table = run_once(benchmark, matrix.fig10_sensitivity)

    print()
    print("Figure 10: exec time vs predictor size (norm to 2k config)")
    print("%-9s %-13s %-9s %7s" % ("workload", "algorithm", "pred",
                                   "ratio"))
    for workload, by_algorithm in table.items():
        for algorithm, by_predictor in by_algorithm.items():
            for predictor, value in by_predictor.items():
                print(
                    "%-9s %-13s %-9s %7.3f"
                    % (workload, algorithm, predictor, value)
                )

    # Insensitivity: everything within a few percent of the central
    # configuration...
    for workload, by_algorithm in table.items():
        for algorithm, by_predictor in by_algorithm.items():
            for predictor, value in by_predictor.items():
                if algorithm == "exact" and workload == "splash2":
                    continue  # the known exception
                assert value == pytest.approx(1.0, abs=0.08), (
                    workload,
                    algorithm,
                    predictor,
                )

    # ... except Exact on SPLASH-2, where the small predictor causes
    # downgrades: Exa512 must be visibly slower than Exa2k.
    exact_splash = table["splash2"]["exact"]
    assert exact_splash["Exa512"] > exact_splash["Exa2k"]
    assert exact_splash["Exa512"] > 1.01
    # Growing the predictor does not hurt.
    assert exact_splash["Exa8k"] <= exact_splash["Exa2k"] + 0.02


def test_fig10_downgrade_counts(benchmark, matrix):
    """The mechanism behind the exception: smaller Exact predictors
    downgrade far more lines on the sharing-heavy workload."""

    def collect():
        return {
            predictor: matrix.result(
                "exact", "splash2", predictor
            ).stats.downgrades
            for predictor in ("Exa512", "Exa2k", "Exa8k")
        }

    downgrades = run_once(benchmark, collect)
    print()
    print("Exact downgrades on SPLASH-2:", downgrades)
    assert downgrades["Exa512"] > downgrades["Exa2k"]
    assert downgrades["Exa2k"] >= downgrades["Exa8k"]

"""Figure 6: average number of snoop operations per read snoop
request, for all seven algorithms on the three workload classes.

Shape assertions (the paper's findings):

* Eager snoops all N-1 = 7 CMPs on every request.
* Lazy snoops about half the ring when suppliers exist (SPLASH-2,
  SPECweb) and nearly all 7 CMPs on SPECjbb (no suppliers).
* Subset tracks Lazy (slightly above, by its false negatives).
* The Superset algorithms snoop far less, with Con <= Agg.
* Oracle is below 1 (no snoops at all on memory-served reads) and
  Exact is at or below Oracle (downgrades divert requests to memory).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.harness.experiments import format_by_workload

N = 8


def test_fig6(benchmark, matrix):
    table = run_once(benchmark, matrix.fig6_snoops_per_request)
    print()
    print(
        format_by_workload(
            "Figure 6: snoop operations per read snoop request", table
        )
    )

    for workload, row in table.items():
        assert row["eager"] == pytest.approx(N - 1, abs=0.05), workload

    splash, jbb, web = table["splash2"], table["specjbb"], table["specweb"]

    # Lazy: ~4.5 on SPLASH-2 (suppliers ~half-way), ~7 on SPECjbb.
    assert 4.0 < splash["lazy"] < 5.5
    assert jbb["lazy"] > 6.5
    assert splash["lazy"] < web["lazy"] < jbb["lazy"]

    for workload, row in table.items():
        # Subset tracks Lazy from above (false negatives add snoops).
        assert row["subset"] == pytest.approx(row["lazy"], rel=0.05)
        # Superset Con never snoops more than Agg (it stops checking
        # once the supplier is found).
        assert row["superset_con"] <= row["superset_agg"] + 0.05
        # Both Supersets filter aggressively vs Lazy.
        assert row["superset_agg"] < row["lazy"]
        # Oracle snoops at most once per request.
        assert row["oracle"] < 1.0
        # Exact is essentially at Oracle (possibly below: downgrades).
        assert row["exact"] <= row["oracle"] + 0.05

    # Superset snoops land in the paper's "typically 2-3" band for the
    # sharing-heavy workloads.
    for workload in ("splash2", "specweb"):
        assert 1.0 < table[workload]["superset_con"] < 3.8

#!/usr/bin/env python
"""Constant-memory smoke test for streaming trace replay.

Claim under test: replaying a ``flexsnoop-trace`` file through the
streaming pipeline (``file:`` workload source feeding the simulator,
``jsonl`` trace sink streaming events back out) uses peak memory
independent of trace length.

Protocol:

1. The driver writes two synthetic JSONL traces *without ever
   materializing them* (records are emitted chunk by chunk): a small
   one and a large one at ``SCALE_RATIO`` times more accesses (the
   large one has >= 1M accesses).
2. For each trace it re-invokes this script with ``--probe``, which
   replays the trace via ``repro.obs.runner.run_traced`` with a
   streaming sink and prints its own peak RSS
   (``getrusage(RUSAGE_SELF).ru_maxrss``) as JSON.  A fresh process
   per probe makes the RSS numbers comparable.
3. The driver asserts the large replay stays under an absolute
   budget AND within ``MAX_RSS_RATIO`` of the small replay - if
   memory scaled with trace length, the ratio would approach
   ``SCALE_RATIO``.

Exit status 0 on success, 1 with a diagnostic on failure.  Run it
from the repository root: ``python scripts/memory_smoke.py``.
"""

from __future__ import annotations

import json
import os
import random
import resource
import subprocess
import sys
import tempfile

SMALL_ACCESSES = 250_000
LARGE_ACCESSES = 1_000_000
SCALE_RATIO = LARGE_ACCESSES // SMALL_ACCESSES

#: The large replay must fit well under this many MiB of peak RSS.
ABS_BUDGET_MIB = 512

#: ...and within this factor of the small replay's peak RSS (a
#: trace-length-proportional pipeline would show ~SCALE_RATIO=4x).
MAX_RSS_RATIO = 1.4

NUM_CORES = 8
CHUNK = 4096


def write_synthetic_trace(path: str, total_accesses: int) -> None:
    """Stream a valid v2 trace to ``path`` in bounded memory."""
    per_core = total_accesses // NUM_CORES
    rng = random.Random(42)
    header = {
        "format": "flexsnoop-trace",
        "version": 2,
        "name": "memory-smoke",
        "cores_per_cmp": 1,
        "num_cores": NUM_CORES,
        "total_accesses": per_core * NUM_CORES,
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for core in range(NUM_CORES):
            remaining = per_core
            while remaining:
                size = min(CHUNK, remaining)
                chunk = [
                    [
                        rng.randrange(2048)
                        if rng.random() < 0.3
                        else 4096 + core * 2048 + rng.randrange(2048),
                        int(rng.random() < 0.3),
                        rng.randrange(4),
                    ]
                    for _ in range(size)
                ]
                handle.write(
                    json.dumps({"core": core, "accesses": chunk}) + "\n"
                )
                remaining -= size
        for core in range(NUM_CORES):
            handle.write(
                json.dumps({"core": core, "prewarm": []}) + "\n"
            )


def probe(trace_path: str) -> None:
    """Replay ``trace_path`` with streaming input and output, then
    print this process's peak RSS as JSON on the last line."""
    from repro.obs.runner import run_traced

    events_path = trace_path + ".events.jsonl"
    try:
        traced = run_traced(
            "lazy",
            "file:%s" % trace_path,
            warmup_fraction=0.25,
            sink="jsonl:%s" % events_path,
        )
        assert traced.events == [], "streaming sink must not buffer"
        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        if sys.platform == "darwin":
            rss_kb //= 1024
        print(
            json.dumps(
                {
                    "rss_kib": rss_kb,
                    "exec_time": traced.result.exec_time,
                    "num_events": traced.meta["num_events"],
                }
            )
        )
    finally:
        if os.path.exists(events_path):
            os.unlink(events_path)


def run_probe(trace_path: str) -> dict:
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src",
    )
    env["PYTHONPATH"] = src + os.pathsep * bool(
        env.get("PYTHONPATH")
    ) + env.get("PYTHONPATH", "")
    output = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--probe", trace_path],
        check=True,
        capture_output=True,
        text=True,
        env=env,
    ).stdout
    return json.loads(output.strip().splitlines()[-1])


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "--probe":
        probe(sys.argv[2])
        return 0

    with tempfile.TemporaryDirectory(prefix="flexsnoop-smoke-") as tmp:
        small_path = os.path.join(tmp, "small.jsonl")
        large_path = os.path.join(tmp, "large.jsonl")
        print(
            "generating traces: %d and %d accesses..."
            % (SMALL_ACCESSES, LARGE_ACCESSES)
        )
        write_synthetic_trace(small_path, SMALL_ACCESSES)
        write_synthetic_trace(large_path, LARGE_ACCESSES)

        print("replaying small trace...")
        small = run_probe(small_path)
        print("  peak RSS %.1f MiB, %d events"
              % (small["rss_kib"] / 1024.0, small["num_events"]))
        print("replaying large trace (%dx)..." % SCALE_RATIO)
        large = run_probe(large_path)
        print("  peak RSS %.1f MiB, %d events"
              % (large["rss_kib"] / 1024.0, large["num_events"]))

        ratio = large["rss_kib"] / max(small["rss_kib"], 1)
        print(
            "RSS ratio large/small: %.3f (budget %.2f); "
            "absolute %.1f MiB (budget %d MiB)"
            % (
                ratio,
                MAX_RSS_RATIO,
                large["rss_kib"] / 1024.0,
                ABS_BUDGET_MIB,
            )
        )
        failed = False
        if large["rss_kib"] > ABS_BUDGET_MIB * 1024:
            print("FAIL: large replay exceeded the absolute budget")
            failed = True
        if ratio > MAX_RSS_RATIO:
            print(
                "FAIL: peak RSS grew with trace length "
                "(streaming regression)"
            )
            failed = True
        if failed:
            return 1
        print("OK: replay memory is independent of trace length")
        return 0


if __name__ == "__main__":
    sys.exit(main())

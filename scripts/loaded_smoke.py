#!/usr/bin/env python
"""Loaded-regime smoke test: a tiny injection sweep end to end.

Claim under test: the saturation-study pipeline is healthy - re-pacing
the workload through the ``think_scale`` axis against a contended ring
(finite ``link_occupancy``, serialized snoop ports) produces a curve
whose loaded latency is monotone in offered load, and the contention
model perturbs *timing only*: a fully traced and invariant-checked
contended run must still pass the protocol auditor with zero
violations.

Protocol (run per smoke algorithm - Lazy as the no-predictor
baseline and Criticality, whose decision inputs are the retries and
MSHR queues that only exist under contention):

1. Run a two-point injection sweep (one genuinely light point, one
   well past the ring's capacity) for one (algorithm, topology) pair
   through :func:`repro.harness.saturation.run_saturation` and print
   the emitted curve.
2. Assert the heavier point offers more and is served no faster
   (monotone loaded latency), and that both points completed.
3. Re-run both injection points with event tracing plus synchronous
   invariant checks on, and feed each trace to the policy-aware
   :class:`~repro.obs.audit.TraceAuditor` (decision table and
   write-snoop form included): zero violations required.

Exit status 0 on success, 1 with a diagnostic on failure.  Run it
from the repository root: ``python scripts/loaded_smoke.py``
(``PYTHONPATH=src`` if the package is not installed).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src",
    ),
)

from repro.config import RingConfig, default_machine  # noqa: E402
from repro.core.algorithms import build_algorithm  # noqa: E402
from repro.harness.saturation import (  # noqa: E402
    DEFAULT_LINK_OCCUPANCY,
    format_saturation,
    run_saturation,
)
from repro.obs.audit import TraceAuditor  # noqa: E402
from repro.obs.runner import run_traced  # noqa: E402
from repro.workloads.source import resolve_source  # noqa: E402

#: The no-predictor baseline plus the criticality-aware policy, whose
#: decision context (retries, MSHR-waiter depth) is only exercised in
#: the contended regime this smoke drives.
ALGORITHMS = ("lazy", "criticality")
WORKLOAD = "specjbb"
SCALE = 150
#: One genuinely light point and one well past the ring's capacity.
THINK_SCALES = (40.0, 0.3)
LINK_OCCUPANCY = DEFAULT_LINK_OCCUPANCY


def sweep(algorithm: str) -> int:
    print(
        "sweeping %s on ring: think scales %s, link occupancy %d..."
        % (algorithm, THINK_SCALES, LINK_OCCUPANCY)
    )
    (curve,) = run_saturation(
        algorithms=(algorithm,),
        topologies=("ring",),
        workload=WORKLOAD,
        think_scales=THINK_SCALES,
        accesses_per_core=SCALE,
        warmup_fraction=0.0,
        link_occupancy=LINK_OCCUPANCY,
        jobs=1,
        cache=None,
    )
    print()
    print(format_saturation([curve]))
    print()
    if len(curve.points) != len(THINK_SCALES):
        print(
            "FAIL: expected %d curve points, got %d"
            % (len(THINK_SCALES), len(curve.points))
        )
        return 1
    light, heavy = sorted(
        curve.points, key=lambda p: p.offered_rate
    )
    if not all(p.exec_time > 0 for p in curve.points):
        print("FAIL: a sweep point reported zero execution time")
        return 1
    if heavy.offered_rate <= light.offered_rate:
        print(
            "FAIL: offered rate did not grow with injection "
            "(%.3f -> %.3f)"
            % (light.offered_rate, heavy.offered_rate)
        )
        return 1
    if heavy.latency < light.latency:
        print(
            "FAIL: loaded latency fell under heavier load "
            "(%.1f -> %.1f cycles)"
            % (light.latency, heavy.latency)
        )
        return 1
    print(
        "OK: loaded latency monotone (%.1f -> %.1f cycles over "
        "%.3f -> %.3f txns/kcycle/CMP)"
        % (
            light.latency,
            heavy.latency,
            light.offered_rate,
            heavy.offered_rate,
        )
    )
    return 0


def audit(algorithm: str) -> int:
    source = resolve_source(WORKLOAD, accesses_per_core=SCALE)
    policy = build_algorithm(algorithm)
    machine = default_machine(
        algorithm=algorithm,
        cores_per_cmp=source.cores_per_cmp,
        num_cmps=source.num_cmps,
        ring=RingConfig(
            link_occupancy=LINK_OCCUPANCY,
            serialize_snoop_port=True,
        ),
    )
    for scale in THINK_SCALES:
        print(
            "auditing traced contended run at think scale %.2f..."
            % scale
        )
        traced = run_traced(
            algorithm,
            WORKLOAD,
            accesses_per_core=SCALE,
            config=machine,
            check_invariants=True,
            think_scale=scale,
        )
        if not traced.events:
            print("FAIL: tracing produced no events")
            return 1
        auditor = TraceAuditor(
            num_cmps=traced.meta["num_cmps"],
            table=policy.decision_table(),
            decouple_writes=policy.decouple_writes,
        )
        violations = auditor.audit(traced.events)
        if violations:
            print(
                "FAIL: auditor found %d violations:" % len(violations)
            )
            for violation in violations[:10]:
                print("  %s" % violation)
            return 1
        print(
            "  clean: %d events, exec_time %d"
            % (len(traced.events), traced.result.exec_time)
        )
    print("OK: zero auditor violations under contention")
    return 0


def main() -> int:
    for algorithm in ALGORITHMS:
        rc = sweep(algorithm)
        if rc:
            return rc
        rc = audit(algorithm)
        if rc:
            return rc
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
